package sparse

import (
	"sync"

	"voltsense/internal/mat"
)

// This file is the parallel execution layer of the sparse engine: a small
// dispatcher (team) that reuses the mat worker pool with preallocated jobs,
// and the row-partitioned SpMV / elementwise / reduction kernels the solvers
// are built from.
//
// Two invariants hold everywhere:
//
//   - Determinism. Every output element is written by exactly one share with
//     a per-element operation order that does not depend on the worker
//     count, and reductions accumulate into fixed-size blocks (dotBlock
//     elements) whose partial sums are combined serially in block order.
//     Results are therefore bitwise identical whether a kernel runs with 1
//     worker or GOMAXPROCS.
//   - Zero allocation. Jobs and stage closures are built once at solver
//     construction and parameterized through fields, so the transient
//     stepping hot loop allocates nothing.

const (
	// rowChunk is the minimum rows per share for SpMV and triangular
	// sweeps; below it dispatch overhead dominates the ~5 nnz/row work.
	rowChunk = 2048
	// vecChunk is the minimum elements per share for elementwise kernels.
	vecChunk = 8192
	// dotBlock is the fixed reduction block: partial sums are formed per
	// block and combined serially, so the summation tree is independent of
	// the worker count.
	dotBlock = 4096
	// dotBlockChunk is the minimum reduction blocks per share.
	dotBlockChunk = 4
)

// numDotBlocks returns the reduction-block count for vectors of length n.
func numDotBlocks(n int) int { return (n + dotBlock - 1) / dotBlock }

// team fans one index range out across the mat worker pool. All job storage
// is preallocated: a dispatch costs channel sends and a WaitGroup, never an
// allocation. A team is single-client — one dispatch at a time — matching
// the solvers that embed it.
type team struct {
	workers int
	wg      sync.WaitGroup
	fn      func(lo, hi int)
	jobs    []teamJob
}

type teamJob struct {
	call   func()
	lo, hi int
}

// init prepares the team for up to workers concurrent shares; workers <= 0
// tracks the mat pool default (SetParallelism / GOMAXPROCS).
func (t *team) init(workers int) {
	t.workers = workers
	n := workers
	if n <= 0 {
		n = mat.Parallelism()
	}
	t.jobs = make([]teamJob, n)
	for c := range t.jobs {
		j := &t.jobs[c]
		j.call = func() {
			t.fn(j.lo, j.hi)
			t.wg.Done()
		}
	}
}

// shares returns the effective share count for n items at minChunk
// granularity.
func (t *team) shares(n, minChunk int) int {
	p := t.workers
	if p <= 0 {
		p = mat.Parallelism()
	}
	if p > len(t.jobs) {
		p = len(t.jobs)
	}
	if m := n / minChunk; p > m {
		p = m
	}
	if p < 1 {
		p = 1
	}
	return p
}

// run partitions [0, n) into contiguous chunks and executes fn on each,
// dispatching all but the first chunk to the pool (inline when the pool is
// busy or absent). Chunk boundaries depend only on n and the share count;
// fn must write disjoint outputs per chunk.
func (t *team) run(n, minChunk int, fn func(lo, hi int)) {
	p := t.shares(n, minChunk)
	if p <= 1 {
		fn(0, n)
		return
	}
	t.fn = fn
	t.wg.Add(p - 1)
	for c := 1; c < p; c++ {
		j := &t.jobs[c]
		j.lo, j.hi = c*n/p, (c+1)*n/p
		if !mat.Submit(j.call) {
			j.call()
		}
	}
	fn(0, n/p)
	t.wg.Wait()
}

// ops bundles the team with every parallel kernel the solvers need. Operands
// are staged through fields so the stage closures can be built once; all
// methods are therefore allocation-free after newOps.
type ops struct {
	t    team
	sums []float64 // dot reduction blocks

	a          *CSR    // staged matrix (SpMV)
	x, y, z, w []float64
	s1         float64

	fnSpMV, fnDot, fnAxpy2, fnXpBY, fnSub, fnScale func(lo, hi int)
}

// newOps prepares kernels for vectors of length n with the given worker
// bound (<= 0: pool default).
func newOps(n, workers int) *ops {
	o := &ops{sums: make([]float64, numDotBlocks(n))}
	o.t.init(workers)
	o.fnSpMV = func(lo, hi int) { o.a.mulVecRange(o.y, o.x, lo, hi) }
	o.fnDot = func(lo, hi int) {
		for b := lo; b < hi; b++ {
			start := b * dotBlock
			end := start + dotBlock
			if end > len(o.x) {
				end = len(o.x)
			}
			s := 0.0
			for i := start; i < end; i++ {
				s += o.x[i] * o.y[i]
			}
			o.sums[b] = s
		}
	}
	o.fnAxpy2 = func(lo, hi int) {
		a := o.s1
		for i := lo; i < hi; i++ {
			o.x[i] += a * o.z[i]
			o.y[i] -= a * o.w[i]
		}
	}
	o.fnXpBY = func(lo, hi int) {
		b := o.s1
		for i := lo; i < hi; i++ {
			o.x[i] = o.y[i] + b*o.x[i]
		}
	}
	o.fnSub = func(lo, hi int) {
		for i := lo; i < hi; i++ {
			o.x[i] = o.y[i] - o.x[i]
		}
	}
	o.fnScale = func(lo, hi int) {
		s := o.s1
		for i := lo; i < hi; i++ {
			o.x[i] = s * o.y[i]
		}
	}
	return o
}

// mulVecRange computes y[lo:hi] of y = c·x — the per-share body of the
// parallel SpMV.
func (c *CSR) mulVecRange(y, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		s := 0.0
		for k := c.rowPtr[i]; k < c.rowPtr[i+1]; k++ {
			s += c.val[k] * x[c.colIdx[k]]
		}
		y[i] = s
	}
}

// mulVec computes y = a·x with row-partitioned shares.
func (o *ops) mulVec(a *CSR, y, x []float64) {
	o.a, o.y, o.x = a, y, x
	o.t.run(a.rows, rowChunk, o.fnSpMV)
}

// dot returns x·y via the fixed-block deterministic reduction.
func (o *ops) dot(x, y []float64) float64 {
	o.x, o.y = x, y
	nb := numDotBlocks(len(x))
	o.t.run(nb, dotBlockChunk, o.fnDot)
	total := 0.0
	for _, s := range o.sums[:nb] {
		total += s
	}
	return total
}

// axpy2 performs the fused CG update x += a·p, r -= a·ap.
func (o *ops) axpy2(a float64, x, p, r, ap []float64) {
	o.s1, o.x, o.z, o.y, o.w = a, x, p, r, ap
	o.t.run(len(x), vecChunk, o.fnAxpy2)
}

// xpby performs p = z + b·p.
func (o *ops) xpby(p, z []float64, b float64) {
	o.s1, o.x, o.y = b, p, z
	o.t.run(len(p), vecChunk, o.fnXpBY)
}

// sub performs r = b - r (after an SpMV left the product in r).
func (o *ops) sub(r, b []float64) {
	o.x, o.y = r, b
	o.t.run(len(r), vecChunk, o.fnSub)
}

// scale performs x = s·y.
func (o *ops) scale(x []float64, s float64, y []float64) {
	o.s1, o.x, o.y = s, x, y
	o.t.run(len(x), vecChunk, o.fnScale)
}

// teamPreconditioner is implemented by preconditioners that can apply
// themselves on the solver's team (level-scheduled IC, Chebyshev, Jacobi);
// others fall back to the serial Apply.
type teamPreconditioner interface {
	applyTeam(o *ops, z, r []float64)
}

// applyTeam parallelizes the diagonal scaling through the preconditioner's
// prebuilt stage (see NewJacobi), so repeated applications allocate nothing.
func (j *Jacobi) applyTeam(o *ops, z, r []float64) {
	j.z, j.r = z, r
	o.t.run(len(z), vecChunk, j.stage)
	j.z, j.r = nil, nil
}
