package sparse

import "fmt"

// Reverse Cuthill–McKee reordering. PCG cost on a mesh Laplacian is
// dominated by memory traffic, and both the SpMV and the IC triangular
// sweeps touch x[colIdx[k]] gather-style: the narrower the bandwidth, the
// closer those gathers stay to the rows being written and the better the
// cache behaves. RCM renumbers the graph breadth-first from a
// pseudo-peripheral vertex, visiting neighbors in ascending degree, then
// reverses the ordering — the classic envelope-minimizing heuristic. On the
// regular grids the pdn assembler emits it recovers diagonal-band structure
// regardless of how nodes were originally numbered, and it shortens the IC
// level schedules (wavefronts) that bound the parallel sweep depth.

// RCM returns a reverse Cuthill–McKee permutation for the symmetric matrix
// a: perm[newIdx] = oldIdx. Disconnected components are each ordered from
// their own pseudo-peripheral start, in ascending order of their lowest
// original index, so the result is deterministic.
func RCM(a *CSR) []int {
	n := a.rows
	if a.cols != n {
		panic(fmt.Sprintf("sparse: RCM needs square matrix, got %dx%d", a.rows, a.cols))
	}
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		// Degree excludes the diagonal so leaf detection matches graph terms.
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			if a.colIdx[k] != i {
				deg[i]++
			}
		}
	}
	perm := make([]int, 0, n)
	visited := make([]bool, n)
	nbr := make([]int, 0, 16)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		root := pseudoPeripheral(a, start, deg, visited)
		// Cuthill–McKee BFS from root, neighbors in ascending (degree, index).
		head := len(perm)
		visited[root] = true
		perm = append(perm, root)
		for head < len(perm) {
			u := perm[head]
			head++
			nbr = nbr[:0]
			for k := a.rowPtr[u]; k < a.rowPtr[u+1]; k++ {
				v := a.colIdx[k]
				if v != u && !visited[v] {
					visited[v] = true
					nbr = append(nbr, v)
				}
			}
			// Insertion sort by (degree, index): neighbor lists are stencil-
			// sized (a handful of entries), where sort.Slice's closure and
			// interface costs dominate the actual comparisons.
			for x := 1; x < len(nbr); x++ {
				v := nbr[x]
				y := x - 1
				for y >= 0 && (deg[nbr[y]] > deg[v] || (deg[nbr[y]] == deg[v] && nbr[y] > v)) {
					nbr[y+1] = nbr[y]
					y--
				}
				nbr[y+1] = v
			}
			perm = append(perm, nbr...)
		}
	}
	// Reverse: Cuthill–McKee ordered, RCM is its mirror image.
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// pseudoPeripheral finds a vertex of near-maximal eccentricity in start's
// component by the George–Liu iteration: BFS from the current candidate,
// move to a minimum-degree vertex of the last BFS level, and repeat while
// the eccentricity keeps growing. It does not mark visited[].
func pseudoPeripheral(a *CSR, start int, deg []int, visited []bool) int {
	n := a.rows
	level := make([]int, n)
	queue := make([]int, 0, 64)
	cur := start
	curEcc := -1
	for {
		// BFS from cur over unvisited vertices (the current component).
		for i := range level {
			level[i] = -1
		}
		queue = queue[:0]
		queue = append(queue, cur)
		level[cur] = 0
		ecc := 0
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for k := a.rowPtr[u]; k < a.rowPtr[u+1]; k++ {
				v := a.colIdx[k]
				if v == u || visited[v] || level[v] >= 0 {
					continue
				}
				level[v] = level[u] + 1
				if level[v] > ecc {
					ecc = level[v]
				}
				queue = append(queue, v)
			}
		}
		if ecc <= curEcc {
			return cur
		}
		curEcc = ecc
		// Minimum-degree vertex of the deepest level, lowest index on ties.
		best := -1
		for _, u := range queue {
			if level[u] != ecc {
				continue
			}
			if best < 0 || deg[u] < deg[best] || (deg[u] == deg[best] && u < best) {
				best = u
			}
		}
		cur = best
	}
}

// PermuteSym returns P·A·Pᵀ for the permutation perm (perm[newIdx] =
// oldIdx): entry (i, j) of the result is a[perm[i], perm[j]], with columns
// ascending in every row. The permuted matrix is what the solver factors
// and multiplies; vectors map via x_new[i] = x_old[perm[i]].
func PermuteSym(a *CSR, perm []int) *CSR {
	n := a.rows
	if a.cols != n {
		panic(fmt.Sprintf("sparse: PermuteSym needs square matrix, got %dx%d", a.rows, a.cols))
	}
	if len(perm) != n {
		panic(fmt.Sprintf("sparse: PermuteSym perm length %d, want %d", len(perm), n))
	}
	iperm := make([]int, n)
	for newI, oldI := range perm {
		iperm[oldI] = newI
	}
	p := &CSR{
		rows: n, cols: n,
		rowPtr: make([]int, n+1),
		colIdx: make([]int, len(a.val)),
		val:    make([]float64, len(a.val)),
	}
	for newI := 0; newI < n; newI++ {
		oldI := perm[newI]
		p.rowPtr[newI+1] = p.rowPtr[newI] + (a.rowPtr[oldI+1] - a.rowPtr[oldI])
	}
	for newI := 0; newI < n; newI++ {
		oldI := perm[newI]
		base := p.rowPtr[newI]
		w := base
		for k := a.rowPtr[oldI]; k < a.rowPtr[oldI+1]; k++ {
			p.colIdx[w] = iperm[a.colIdx[k]]
			p.val[w] = a.val[k]
			w++
		}
		// Insertion sort the row by column in place: stencil rows hold a
		// handful of entries, so per-row sort.Slice overhead (two allocations
		// each) would dominate the permutation itself on big meshes.
		for x := base + 1; x < w; x++ {
			j, v := p.colIdx[x], p.val[x]
			y := x - 1
			for y >= base && p.colIdx[y] > j {
				p.colIdx[y+1], p.val[y+1] = p.colIdx[y], p.val[y]
				y--
			}
			p.colIdx[y+1], p.val[y+1] = j, v
		}
	}
	return p
}

// Bandwidth returns max |i - j| over the stored entries — the quantity RCM
// minimizes, exposed for tests and diagnostics.
func Bandwidth(a *CSR) int {
	bw := 0
	for i := 0; i < a.rows; i++ {
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			d := i - a.colIdx[k]
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}
