package sparse

import "fmt"

// Precond names a preconditioner family for flag plumbing (pdn's sparse
// backend and the -precond CLI flags). It selects how the constant SPD
// system is approximated, trading iteration count against per-iteration
// parallelism: the level-scheduled IC sweeps carry sequential dependencies
// between levels, while Chebyshev and Jacobi are embarrassingly parallel.
type Precond int

const (
	// PrecondAuto lets the caller pick (pdn uses modified IC(0), the
	// strongest option, falling back to plain IC on breakdown).
	PrecondAuto Precond = iota
	// PrecondIC is incomplete Cholesky — modified IC(0) with plain-IC
	// fallback — applied by level-scheduled parallel triangular sweeps.
	PrecondIC
	// PrecondJacobi is diagonal scaling: weakest, fully parallel.
	PrecondJacobi
	// PrecondCheby is the Chebyshev polynomial preconditioner over Jacobi
	// scaling: a fixed-degree polynomial in diag(A)⁻¹A built from SpMV and
	// vector kernels only, so every flop parallelizes.
	PrecondCheby
)

// String names the preconditioner for logs and flags.
func (p Precond) String() string {
	switch p {
	case PrecondAuto:
		return "auto"
	case PrecondIC:
		return "ic"
	case PrecondJacobi:
		return "jacobi"
	case PrecondCheby:
		return "cheby"
	}
	return fmt.Sprintf("Precond(%d)", int(p))
}

// ParsePrecond maps a flag value ("auto", "ic", "jacobi", "cheby") to a
// Precond.
func ParsePrecond(s string) (Precond, error) {
	switch s {
	case "", "auto":
		return PrecondAuto, nil
	case "ic":
		return PrecondIC, nil
	case "jacobi":
		return PrecondJacobi, nil
	case "cheby":
		return PrecondCheby, nil
	}
	return PrecondAuto, fmt.Errorf("sparse: unknown preconditioner %q (want auto, ic, jacobi or cheby)", s)
}
