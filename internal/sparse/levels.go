package sparse

// Level scheduling for the IC(0) triangular sweeps. A forward substitution
// with L is sequential row by row only in appearance: row i depends solely
// on the rows named by its off-diagonal columns, so rows can be grouped into
// levels — level(i) = 1 + max(level(j) : j a dependency of i) — and every
// row within a level solved concurrently. The level sets are a property of
// the sparsity pattern alone, so they are built once at factor time; on a
// 2D mesh they are the anti-diagonal wavefronts (NX+NY-1 levels of up to
// min(NX, NY) rows each), and RCM reordering keeps them tight on irregular
// meshes.
//
// Determinism: a row's value is computed by exactly one share with the same
// per-element operation order as the sequential sweep — dependencies are
// fully resolved in earlier levels — so the parallel sweep is bitwise
// identical to the serial one at any worker count.

// levelRowChunk is the minimum rows of one level handled per share; levels
// narrower than 2*levelRowChunk run inline, which keeps the per-level
// dispatch overhead off small wavefronts.
const levelRowChunk = 512

// levelSchedule groups the rows of a triangular CSR into dependency levels:
// rows[ptr[l]:ptr[l+1]] lists the rows of level l in ascending order.
type levelSchedule struct {
	ptr  []int
	rows []int
}

// buildLevels computes the dependency levels of a triangular matrix given
// row-wise dependency column lists: deps(i) must yield the columns of row i
// excluding the diagonal. Rows must be solvable in natural order 0..n-1
// (lower triangle) — callers with an upper triangle pass reversed indices.
func buildLevels(n int, deps func(i int) []int) levelSchedule {
	level := make([]int, n)
	maxLevel := 0
	for i := 0; i < n; i++ {
		l := 0
		for _, j := range deps(i) {
			if level[j] >= l {
				l = level[j] + 1
			}
		}
		level[i] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	sched := levelSchedule{
		ptr:  make([]int, maxLevel+2),
		rows: make([]int, n),
	}
	for _, l := range level {
		sched.ptr[l+1]++
	}
	for l := 0; l <= maxLevel; l++ {
		sched.ptr[l+1] += sched.ptr[l]
	}
	next := make([]int, maxLevel+1)
	copy(next, sched.ptr[:maxLevel+1])
	for i := 0; i < n; i++ {
		l := level[i]
		sched.rows[next[l]] = i
		next[l]++
	}
	return sched
}

// numLevels returns the level count.
func (s *levelSchedule) numLevels() int { return len(s.ptr) - 1 }

// buildSchedules attaches the forward and backward level schedules and the
// prebuilt parallel sweep stages to the factor. Called once by newIC.
func (m *IC) buildSchedules() {
	l, lt := m.l, m.lt
	// Forward sweep with L: row i depends on its off-diagonal columns
	// (diagonal is stored last in each row).
	m.fwd = buildLevels(m.n, func(i int) []int {
		return l.colIdx[l.rowPtr[i] : l.rowPtr[i+1]-1]
	})
	// Backward sweep with Lᵀ: row i depends on columns j > i (diagonal is
	// stored first). Solve order is n-1..0, so build levels on reversed
	// indices: virtual row r = n-1-i depends on virtual rows n-1-j.
	n := m.n
	revDeps := make([]int, 0, 8)
	m.bwd = buildLevels(n, func(r int) []int {
		i := n - 1 - r
		revDeps = revDeps[:0]
		for k := lt.rowPtr[i] + 1; k < lt.rowPtr[i+1]; k++ {
			revDeps = append(revDeps, n-1-lt.colIdx[k])
		}
		return revDeps
	})
	m.fwdStage = func(lo, hi int) {
		z, r := m.z, m.r
		for idx := lo; idx < hi; idx++ {
			i := m.rowsCur[idx]
			s := r[i]
			end := l.rowPtr[i+1] - 1 // diagonal is last
			for k := l.rowPtr[i]; k < end; k++ {
				s -= l.val[k] * z[l.colIdx[k]]
			}
			z[i] = s / l.val[end]
		}
	}
	m.bwdStage = func(lo, hi int) {
		z := m.z
		for idx := lo; idx < hi; idx++ {
			i := n - 1 - m.rowsCur[idx]
			s := z[i]
			start := lt.rowPtr[i] // diagonal is first
			for k := start + 1; k < lt.rowPtr[i+1]; k++ {
				s -= lt.val[k] * z[lt.colIdx[k]]
			}
			z[i] = s / lt.val[start]
		}
	}
}

// applyTeam solves L·Lᵀ·z = r with level-scheduled parallel sweeps. Within
// each level every row is independent; the team partitions the level's row
// list, so the result is bitwise identical to the sequential Apply.
func (m *IC) applyTeam(o *ops, z, r []float64) {
	m.z, m.r = z, r
	for l := 0; l < m.fwd.numLevels(); l++ {
		m.rowsCur = m.fwd.rows[m.fwd.ptr[l]:m.fwd.ptr[l+1]]
		o.t.run(len(m.rowsCur), levelRowChunk, m.fwdStage)
	}
	for l := 0; l < m.bwd.numLevels(); l++ {
		m.rowsCur = m.bwd.rows[m.bwd.ptr[l]:m.bwd.ptr[l+1]]
		o.t.run(len(m.rowsCur), levelRowChunk, m.bwdStage)
	}
	m.z, m.r, m.rowsCur = nil, nil, nil
}

// Levels reports the forward and backward level counts of the factor's
// sparsity pattern — the sequential depth of the parallel triangular sweeps
// (diagnostics and tests).
func (m *IC) Levels() (fwd, bwd int) {
	return m.fwd.numLevels(), m.bwd.numLevels()
}
