// Package sensor models the physical imperfections of on-die voltage
// sensors — thermal noise, offset and gain error, ADC quantization, and
// saturation — so the methodology's robustness can be studied under
// realistic measurement conditions rather than the paper's ideal readings.
//
// A Model is applied to ideal node voltages to produce what the sensor
// would actually report; Array applies per-sensor instances (each with its
// own sampled offset/gain, as fabrication variation produces) to a reading
// vector. The experiments package uses this to sweep detection quality
// against ADC resolution and noise floor.
package sensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Model describes one sensor's transfer characteristic:
//
//	reported = quantize(clamp(gain*(v + offset) + noise))
type Model struct {
	Offset     float64 // additive error, volts
	Gain       float64 // multiplicative error, 1.0 = ideal
	NoiseSigma float64 // std-dev of white measurement noise, volts
	Bits       int     // ADC resolution; 0 = no quantization
	FullScaleL float64 // ADC range low, volts
	FullScaleH float64 // ADC range high, volts
}

// Ideal returns a perfect sensor.
func Ideal() Model { return Model{Gain: 1} }

// Validate reports configuration errors.
func (m Model) Validate() error {
	if m.Gain == 0 {
		return fmt.Errorf("sensor: zero gain")
	}
	if m.NoiseSigma < 0 {
		return fmt.Errorf("sensor: negative noise sigma %v", m.NoiseSigma)
	}
	if m.Bits < 0 || m.Bits > 24 {
		return fmt.Errorf("sensor: ADC bits %d out of [0, 24]", m.Bits)
	}
	if m.Bits > 0 && m.FullScaleH <= m.FullScaleL {
		return fmt.Errorf("sensor: ADC range [%v, %v] empty", m.FullScaleL, m.FullScaleH)
	}
	return nil
}

// Read converts one true voltage into the sensor's report, drawing noise
// from rng (required when NoiseSigma > 0).
func (m Model) Read(v float64, rng *rand.Rand) float64 {
	out := m.Gain * (v + m.Offset)
	if m.NoiseSigma > 0 {
		out += rng.NormFloat64() * m.NoiseSigma
	}
	if m.Bits > 0 {
		levels := float64(int(1)<<uint(m.Bits)) - 1
		span := m.FullScaleH - m.FullScaleL
		if out < m.FullScaleL {
			out = m.FullScaleL
		}
		if out > m.FullScaleH {
			out = m.FullScaleH
		}
		code := math.Round((out - m.FullScaleL) / span * levels)
		out = m.FullScaleL + code/levels*span
	}
	return out
}

// LSB returns the quantization step in volts, or 0 without an ADC.
func (m Model) LSB() float64 {
	if m.Bits <= 0 {
		return 0
	}
	return (m.FullScaleH - m.FullScaleL) / (float64(int(1)<<uint(m.Bits)) - 1)
}

// Variation describes fabrication spread when instantiating an array:
// per-sensor offset ~ N(0, OffsetSigma), gain ~ N(1, GainSigma).
type Variation struct {
	OffsetSigma float64
	GainSigma   float64
}

// Array is a set of per-sensor Models sharing an ADC/noise spec.
type Array struct {
	Sensors []Model
	rng     *rand.Rand
}

// NewArray instantiates n sensors from a base spec plus fabrication
// variation, deterministically from seed.
func NewArray(n int, base Model, v Variation, seed int64) (*Array, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("sensor: array size %d", n)
	}
	if v.OffsetSigma < 0 || v.GainSigma < 0 {
		return nil, fmt.Errorf("sensor: negative variation %+v", v)
	}
	rng := rand.New(rand.NewSource(seed))
	a := &Array{Sensors: make([]Model, n), rng: rand.New(rand.NewSource(seed + 1))}
	for i := range a.Sensors {
		s := base
		s.Offset += rng.NormFloat64() * v.OffsetSigma
		s.Gain *= 1 + rng.NormFloat64()*v.GainSigma
		a.Sensors[i] = s
	}
	return a, nil
}

// ReadAll converts a vector of true voltages into sensor reports. The
// returned slice is freshly allocated.
func (a *Array) ReadAll(v []float64) []float64 {
	if len(v) != len(a.Sensors) {
		panic(fmt.Sprintf("sensor: %d voltages for %d sensors", len(v), len(a.Sensors)))
	}
	out := make([]float64, len(v))
	for i, s := range a.Sensors {
		out[i] = s.Read(v[i], a.rng)
	}
	return out
}

// Calibrate removes each sensor's static offset and gain error, modeling
// two-point calibration against known references at production test;
// noise and quantization remain.
func (a *Array) Calibrate() {
	for i := range a.Sensors {
		a.Sensors[i].Offset = 0
		a.Sensors[i].Gain = 1
	}
}
