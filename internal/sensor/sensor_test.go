package sensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdealSensorIsTransparent(t *testing.T) {
	m := Ideal()
	rng := rand.New(rand.NewSource(1))
	for _, v := range []float64{0, 0.85, 1.0, -0.3} {
		if got := m.Read(v, rng); got != v {
			t.Fatalf("ideal sensor read %v as %v", v, got)
		}
	}
}

func TestOffsetAndGain(t *testing.T) {
	m := Model{Offset: 0.01, Gain: 1.02}
	rng := rand.New(rand.NewSource(1))
	want := 1.02 * (0.9 + 0.01)
	if got := m.Read(0.9, rng); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Read = %v, want %v", got, want)
	}
}

func TestQuantizationGridAndClamp(t *testing.T) {
	m := Model{Gain: 1, Bits: 4, FullScaleL: 0, FullScaleH: 1.5}
	rng := rand.New(rand.NewSource(1))
	lsb := m.LSB()
	if math.Abs(lsb-0.1) > 1e-12 {
		t.Fatalf("LSB = %v, want 0.1", lsb)
	}
	// Every output must land on the code grid.
	for v := -0.2; v <= 1.7; v += 0.013 {
		got := m.Read(v, rng)
		code := (got - m.FullScaleL) / lsb
		if math.Abs(code-math.Round(code)) > 1e-9 {
			t.Fatalf("Read(%v) = %v not on quantization grid", v, got)
		}
		if got < m.FullScaleL || got > m.FullScaleH {
			t.Fatalf("Read(%v) = %v escaped full scale", v, got)
		}
	}
	// Clamping at the rails.
	if got := m.Read(99, rng); got != m.FullScaleH {
		t.Fatalf("over-range read %v, want %v", got, m.FullScaleH)
	}
	if got := m.Read(-99, rng); got != m.FullScaleL {
		t.Fatalf("under-range read %v, want %v", got, m.FullScaleL)
	}
}

// Property: quantization error never exceeds half an LSB inside full scale.
func TestQuantizationErrorBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := 4 + rng.Intn(12)
		m := Model{Gain: 1, Bits: bits, FullScaleL: 0.5, FullScaleH: 1.1}
		v := 0.5 + rng.Float64()*0.6
		got := m.Read(v, rng)
		return math.Abs(got-v) <= m.LSB()/2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNoiseStatistics(t *testing.T) {
	m := Model{Gain: 1, NoiseSigma: 0.005}
	rng := rand.New(rand.NewSource(7))
	n := 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		d := m.Read(0.9, rng) - 0.9
		sum += d
		sumSq += d * d
	}
	mean := sum / float64(n)
	sigma := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean) > 3*0.005/math.Sqrt(float64(n)) {
		t.Errorf("noise mean %v biased", mean)
	}
	if math.Abs(sigma-0.005) > 0.0005 {
		t.Errorf("noise sigma %v, want 0.005", sigma)
	}
}

func TestValidate(t *testing.T) {
	bad := []Model{
		{Gain: 0},
		{Gain: 1, NoiseSigma: -1},
		{Gain: 1, Bits: 30},
		{Gain: 1, Bits: 8, FullScaleL: 1, FullScaleH: 1},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if err := Ideal().Validate(); err != nil {
		t.Errorf("ideal sensor invalid: %v", err)
	}
}

func TestArrayVariationAndDeterminism(t *testing.T) {
	base := Ideal()
	a1, err := NewArray(50, base, Variation{OffsetSigma: 0.002, GainSigma: 0.01}, 42)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewArray(50, base, Variation{OffsetSigma: 0.002, GainSigma: 0.01}, 42)
	if err != nil {
		t.Fatal(err)
	}
	distinct := false
	for i := range a1.Sensors {
		if a1.Sensors[i] != a2.Sensors[i] {
			t.Fatal("same seed produced different arrays")
		}
		if a1.Sensors[i].Offset != 0 || a1.Sensors[i].Gain != 1 {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("variation produced perfectly ideal sensors")
	}
}

func TestArrayReadAllAndCalibrate(t *testing.T) {
	a, err := NewArray(3, Ideal(), Variation{OffsetSigma: 0.01}, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{0.9, 0.9, 0.9}
	before := a.ReadAll(v)
	var maxErr float64
	for _, r := range before {
		if d := math.Abs(r - 0.9); d > maxErr {
			maxErr = d
		}
	}
	if maxErr == 0 {
		t.Fatal("offsets had no effect")
	}
	a.Calibrate()
	after := a.ReadAll(v)
	for _, r := range after {
		if r != 0.9 {
			t.Fatalf("calibrated read %v, want 0.9", r)
		}
	}
}

func TestArrayErrors(t *testing.T) {
	if _, err := NewArray(0, Ideal(), Variation{}, 1); err == nil {
		t.Error("expected size error")
	}
	if _, err := NewArray(2, Model{}, Variation{}, 1); err == nil {
		t.Error("expected base validation error")
	}
	if _, err := NewArray(2, Ideal(), Variation{OffsetSigma: -1}, 1); err == nil {
		t.Error("expected variation error")
	}
	a, err := NewArray(2, Ideal(), Variation{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for size mismatch")
		}
	}()
	a.ReadAll([]float64{1})
}
