package ols

import (
	"fmt"
	"math"

	"voltsense/internal/mat"
)

// FitWeighted solves the per-sample weighted least-squares problem
//
//	min_{α, c} Σ_j w_j ‖f_j − α·x_j − c‖²
//
// for x (Q-by-N selected-sensor samples), f (K-by-N target samples) and one
// non-negative weight per sample (column). It is the generalized-least-squares
// counterpart of Fit for diagonal sample covariances: whiten both sides by
// √w_j, eliminate the intercept against the weighted means, and solve the
// whitened design by QR. Uniform weights reproduce Fit exactly (the common
// factor cancels), which TestFitWeightedUniformMatchesFit pins to 1e-9.
//
// Samples with weight zero are retained but contribute nothing; at least
// Q+1 samples must carry positive weight or the design is underdetermined.
func FitWeighted(x, f *mat.Matrix, w []float64) (*Model, error) {
	if x.Cols() != f.Cols() {
		panic(fmt.Sprintf("ols: x has %d samples, f has %d", x.Cols(), f.Cols()))
	}
	if len(w) != x.Cols() {
		panic(fmt.Sprintf("ols: %d weights for %d samples", len(w), x.Cols()))
	}
	q, n := x.Rows(), x.Cols()
	k := f.Rows()
	var wSum float64
	positive := 0
	for _, v := range w {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("ols: invalid sample weight %v", v)
		}
		if v > 0 {
			positive++
		}
		wSum += v
	}
	if positive < q+1 {
		return nil, fmt.Errorf("ols: %d positively-weighted samples cannot determine %d coefficients plus intercept", positive, q)
	}

	// Weighted row means: the intercept of the weighted problem is eliminated
	// against Σ w_j x_j / Σ w_j rather than the plain mean.
	xMean := weightedRowMeans(x, w, wSum)
	fMean := weightedRowMeans(f, w, wSum)

	// Whitened design (N-by-Q) and right-hand side (N-by-K): each centered
	// sample row scaled by √w_j.
	design := mat.Zeros(n, q)
	dd := design.Data()
	rhs := mat.Zeros(n, k)
	rd := rhs.Data()
	for j := 0; j < n; j++ {
		s := math.Sqrt(w[j])
		for i := 0; i < q; i++ {
			dd[j*q+i] = s * (x.At(i, j) - xMean[i])
		}
		for i := 0; i < k; i++ {
			rd[j*k+i] = s * (f.At(i, j) - fMean[i])
		}
	}
	sol, err := mat.FactorQR(design).SolveMatrix(rhs) // Q-by-K
	if err != nil {
		return nil, fmt.Errorf("ols: rank-deficient weighted design: %w", err)
	}
	alpha := sol.T() // K-by-Q
	c := make([]float64, k)
	for i := 0; i < k; i++ {
		c[i] = fMean[i] - mat.Dot(alpha.Row(i), xMean)
	}
	return &Model{Alpha: alpha, C: c}, nil
}

// weightedRowMeans returns Σ_j w_j m_ij / Σ_j w_j for every row i.
func weightedRowMeans(m *mat.Matrix, w []float64, wSum float64) []float64 {
	out := make([]float64, m.Rows())
	if wSum == 0 {
		return out
	}
	for i := range out {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += w[j] * v
		}
		out[i] = s / wSum
	}
	return out
}

// GLSGain computes the generalized-least-squares gain matrix
//
//	P = (Dᵀ W D)⁻¹ Dᵀ W,   W = diag(1/σ²_i)
//
// for a design D whose rows are measurement equations (one per sensor) and
// whose columns are unknowns (basis coefficients), with noiseVar holding the
// per-row measurement noise variance σ²_i > 0. Applying P to a noisy reading
// vector y yields the best linear unbiased estimate of the coefficients —
// exactly the weighted-OLS solve of the whitened system, computed through the
// same Householder QR that Fit uses rather than the normal equations, so the
// conditioning of D is squared nowhere.
//
// GLSGain requires rows ≥ cols (at least as many sensors as coefficients)
// and returns ErrSingular-wrapped errors when the weighted design is
// rank-deficient. When every σ²_i is equal, the common factor cancels and P
// is the plain Moore–Penrose pseudo-inverse of D — the OLS estimator.
func GLSGain(design *mat.Matrix, noiseVar []float64) (*mat.Matrix, error) {
	q, r := design.Rows(), design.Cols()
	if len(noiseVar) != q {
		panic(fmt.Sprintf("ols: %d noise variances for %d design rows", len(noiseVar), q))
	}
	if q < r {
		return nil, fmt.Errorf("ols: GLS design has %d equations for %d unknowns", q, r)
	}
	sqw := make([]float64, q) // √w_i = 1/σ_i
	for i, v := range noiseVar {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("ols: noise variance %v at row %d outside (0, ∞)", v, i)
		}
		sqw[i] = 1 / math.Sqrt(v)
	}
	// Whiten the design and solve against the whitened identity: the columns
	// of the solution are P's columns because P·y = argmin ‖√W(D a − y)‖.
	wd := mat.Zeros(q, r)
	for i := 0; i < q; i++ {
		src, dst := design.Row(i), wd.Row(i)
		for j, v := range src {
			dst[j] = sqw[i] * v
		}
	}
	rhs := mat.Zeros(q, q)
	for i := 0; i < q; i++ {
		rhs.Set(i, i, sqw[i])
	}
	gain, err := mat.FactorQR(wd).SolveMatrix(rhs) // r-by-q
	if err != nil {
		return nil, fmt.Errorf("ols: GLS gain: %w", err)
	}
	return gain, nil
}
