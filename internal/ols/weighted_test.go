package ols

import (
	"math"
	"math/rand"
	"testing"

	"voltsense/internal/mat"
)

func randMatrix(rng *rand.Rand, r, c int) *mat.Matrix {
	m := mat.Zeros(r, c)
	d := m.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return m
}

func TestFitWeightedUniformMatchesFit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randMatrix(rng, 4, 60)
	f := randMatrix(rng, 6, 60)
	plain, err := Fit(x, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, wv := range []float64{1, 0.25, 13.5} {
		w := make([]float64, x.Cols())
		for j := range w {
			w[j] = wv
		}
		wm, err := FitWeighted(x, f, w)
		if err != nil {
			t.Fatalf("weight %v: %v", wv, err)
		}
		if !mat.Equalish(plain.Alpha, wm.Alpha, 1e-9) {
			t.Errorf("weight %v: alpha diverges from Fit by %g", wv, mat.MaxAbsDiff(plain.Alpha, wm.Alpha))
		}
		for i := range plain.C {
			if math.Abs(plain.C[i]-wm.C[i]) > 1e-9 {
				t.Errorf("weight %v: intercept %d: %g vs %g", wv, i, plain.C[i], wm.C[i])
			}
		}
	}
}

func TestFitWeightedDownweightsCorruptedSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randMatrix(rng, 3, 80)
	truth := randMatrix(rng, 2, 3) // true coefficients
	f := mat.Mul(truth, x)
	// Corrupt the last 10 samples of f badly; a weighted fit that zeroes
	// them out must recover the clean coefficients.
	for j := 70; j < 80; j++ {
		for i := 0; i < f.Rows(); i++ {
			f.Set(i, j, f.At(i, j)+25)
		}
	}
	w := make([]float64, 80)
	for j := range w {
		if j < 70 {
			w[j] = 1
		}
	}
	m, err := FitWeighted(x, f, w)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equalish(truth, m.Alpha, 1e-8) {
		t.Errorf("weighted fit did not ignore zero-weight samples: max diff %g",
			mat.MaxAbsDiff(truth, m.Alpha))
	}
	// The unweighted fit, by contrast, must be pulled off the truth.
	um, err := Fit(x, f)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Equalish(truth, um.Alpha, 1e-3) {
		t.Error("unweighted fit unexpectedly immune to corrupted samples")
	}
}

func TestFitWeightedRejectsBadWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randMatrix(rng, 3, 20)
	f := randMatrix(rng, 2, 20)
	w := make([]float64, 20)
	for j := range w {
		w[j] = 1
	}
	w[4] = -0.5
	if _, err := FitWeighted(x, f, w); err == nil {
		t.Error("negative weight accepted")
	}
	w[4] = math.NaN()
	if _, err := FitWeighted(x, f, w); err == nil {
		t.Error("NaN weight accepted")
	}
	// Too few positive weights.
	for j := range w {
		w[j] = 0
	}
	w[0], w[1] = 1, 1
	if _, err := FitWeighted(x, f, w); err == nil {
		t.Error("underdetermined weighted design accepted")
	}
}

func TestGLSGainEqualVariancesIsPseudoInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := randMatrix(rng, 8, 3)
	ones := make([]float64, 8)
	scaled := make([]float64, 8)
	for i := range ones {
		ones[i] = 1
		scaled[i] = 0.037 // any common variance must cancel
	}
	p1, err := GLSGain(d, ones)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := GLSGain(d, scaled)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equalish(p1, p2, 1e-9) {
		t.Errorf("equal variances did not cancel: max diff %g", mat.MaxAbsDiff(p1, p2))
	}
	// P·D must be the identity (left inverse on a full-column-rank design).
	pd := mat.Mul(p1, d)
	if !mat.Equalish(pd, mat.Eye(3), 1e-9) {
		t.Errorf("gain is not a left inverse: max diff %g", mat.MaxAbsDiff(pd, mat.Eye(3)))
	}
}

func TestGLSGainRecoversHeteroscedasticTruth(t *testing.T) {
	// With one precise and several noisy equations, the GLS estimate must
	// sit closer to the truth than OLS on average.
	rng := rand.New(rand.NewSource(9))
	d := randMatrix(rng, 12, 2)
	truth := []float64{1.5, -0.7}
	vars := make([]float64, 12)
	for i := range vars {
		vars[i] = 1.0
	}
	vars[0], vars[1] = 1e-6, 1e-6 // two near-exact reference equations
	pGLS, err := GLSGain(d, vars)
	if err != nil {
		t.Fatal(err)
	}
	ones := make([]float64, 12)
	for i := range ones {
		ones[i] = 1
	}
	pOLS, err := GLSGain(d, ones)
	if err != nil {
		t.Fatal(err)
	}
	var glsErr, olsErr float64
	for trial := 0; trial < 200; trial++ {
		y := make([]float64, 12)
		for i := 0; i < 12; i++ {
			y[i] = mat.Dot(d.Row(i), truth) + rng.NormFloat64()*math.Sqrt(vars[i])
		}
		ag := mat.MulVec(pGLS, y)
		ao := mat.MulVec(pOLS, y)
		for k := range truth {
			glsErr += (ag[k] - truth[k]) * (ag[k] - truth[k])
			olsErr += (ao[k] - truth[k]) * (ao[k] - truth[k])
		}
	}
	if glsErr >= olsErr {
		t.Errorf("GLS mean-square error %g not below OLS %g under heteroscedastic noise", glsErr, olsErr)
	}
}

func TestGLSGainRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := randMatrix(rng, 3, 5) // fewer equations than unknowns
	v := []float64{1, 1, 1}
	if _, err := GLSGain(d, v); err == nil {
		t.Error("underdetermined design accepted")
	}
	d2 := randMatrix(rng, 5, 2)
	if _, err := GLSGain(d2, []float64{1, 1, 0, 1, 1}); err == nil {
		t.Error("zero variance accepted")
	}
}
