// Package ols implements the multi-output ordinary least-squares fit of the
// paper's Eq. 17: after group lasso has chosen the Q sensors, an unbiased
// linear model with intercept
//
//	min_{α, c} ‖F − α·Xˢ − C‖_F
//
// is refit on the raw (unnormalized) selected-sensor data, because the
// group-lasso coefficients are biased by the budget constraint (the paper's
// Section 2.3 example). This package also provides the error metrics used
// throughout the evaluation.
package ols

import (
	"fmt"
	"math"

	"voltsense/internal/mat"
)

// Model is a fitted linear predictor f ≈ α·x + c.
type Model struct {
	Alpha *mat.Matrix // K-by-Q coefficients
	C     []float64   // K intercepts
}

// Fit solves the least-squares problem for x (Q-by-N selected-sensor
// samples) and f (K-by-N block-voltage samples). Centering eliminates the
// intercept from the solve; the QR factorization of the centered design
// handles the rest. Fit returns an error when the design is rank-deficient
// (e.g. duplicated sensors).
func Fit(x, f *mat.Matrix) (*Model, error) {
	if x.Cols() != f.Cols() {
		panic(fmt.Sprintf("ols: x has %d samples, f has %d", x.Cols(), f.Cols()))
	}
	q, n := x.Rows(), x.Cols()
	k := f.Rows()
	if n < q+1 {
		return nil, fmt.Errorf("ols: %d samples cannot determine %d coefficients plus intercept", n, q)
	}
	xMean := mat.RowMeans(x)
	fMean := mat.RowMeans(f)

	// Design matrix: centered samples as rows (N-by-Q), one RHS column per
	// output (N-by-K). Written through the raw row-major storage: the
	// sources are rows, the destinations strided columns.
	design := mat.Zeros(n, q)
	dd := design.Data()
	for i := 0; i < q; i++ {
		row := x.Row(i)
		mu := xMean[i]
		for j, v := range row {
			dd[j*q+i] = v - mu
		}
	}
	rhs := mat.Zeros(n, k)
	rd := rhs.Data()
	for i := 0; i < k; i++ {
		row := f.Row(i)
		mu := fMean[i]
		for j, v := range row {
			rd[j*k+i] = v - mu
		}
	}
	sol, err := mat.FactorQR(design).SolveMatrix(rhs) // Q-by-K
	if err != nil {
		return nil, fmt.Errorf("ols: rank-deficient design: %w", err)
	}
	alpha := sol.T() // K-by-Q
	c := make([]float64, k)
	for i := 0; i < k; i++ {
		c[i] = fMean[i] - mat.Dot(alpha.Row(i), xMean)
	}
	return &Model{Alpha: alpha, C: c}, nil
}

// NumInputs returns Q.
func (m *Model) NumInputs() int { return m.Alpha.Cols() }

// NumOutputs returns K.
func (m *Model) NumOutputs() int { return m.Alpha.Rows() }

// Predict evaluates the model on one sensor reading vector (length Q),
// returning the K predicted block voltages. This is the paper's Eq. 20 —
// the only computation needed at runtime.
func (m *Model) Predict(x []float64) []float64 {
	out := mat.MulVec(m.Alpha, x)
	for i := range out {
		out[i] += m.C[i]
	}
	return out
}

// PredictMatrix evaluates the model on Q-by-N samples, returning K-by-N
// predictions.
func (m *Model) PredictMatrix(x *mat.Matrix) *mat.Matrix {
	out := mat.Mul(m.Alpha, x)
	for i := 0; i < out.Rows(); i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += m.C[i]
		}
	}
	return out
}

// RelativeError returns ‖pred − truth‖_F / ‖truth‖_F — the aggregated
// relative prediction error the paper's Table 1 reports over all function
// blocks and benchmarks. The difference is never materialized.
func RelativeError(pred, truth *mat.Matrix) float64 {
	den := truth.FrobeniusNorm()
	if den == 0 {
		return math.Inf(1)
	}
	return mat.FrobeniusDistance(pred, truth) / den
}

// RMSE returns the root-mean-square elementwise error.
func RMSE(pred, truth *mat.Matrix) float64 {
	n := float64(pred.Rows() * pred.Cols())
	if n == 0 {
		return 0
	}
	return mat.FrobeniusDistance(pred, truth) / math.Sqrt(n)
}

// MaxAbsError returns the worst elementwise error.
func MaxAbsError(pred, truth *mat.Matrix) float64 {
	return mat.MaxAbsDiff(pred, truth)
}
