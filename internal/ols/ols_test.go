package ols

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"voltsense/internal/mat"
)

func randn(rng *rand.Rand, r, c int) *mat.Matrix {
	m := mat.Zeros(r, c)
	d := m.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return m
}

// Property: Fit exactly recovers a planted affine model from noiseless data.
func TestFitRecoversPlantedModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := 1 + rng.Intn(5)
		k := 1 + rng.Intn(4)
		n := q + 2 + rng.Intn(50)
		x := randn(rng, q, n)
		alpha := randn(rng, k, q)
		c := make([]float64, k)
		for i := range c {
			c[i] = rng.NormFloat64() * 3
		}
		fm := mat.Mul(alpha, x)
		for i := 0; i < k; i++ {
			row := fm.Row(i)
			for j := range row {
				row[j] += c[i]
			}
		}
		m, err := Fit(x, fm)
		if err != nil {
			return false
		}
		if !mat.Equalish(m.Alpha, alpha, 1e-7) {
			return false
		}
		for i := range c {
			if math.Abs(m.C[i]-c[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPredictMatchesPredictMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randn(rng, 3, 40)
	fm := randn(rng, 2, 40)
	m, err := Fit(x, fm)
	if err != nil {
		t.Fatal(err)
	}
	pm := m.PredictMatrix(x)
	for j := 0; j < 40; j++ {
		p := m.Predict(x.Col(j))
		for i := range p {
			if math.Abs(p[i]-pm.At(i, j)) > 1e-12 {
				t.Fatalf("Predict and PredictMatrix disagree at (%d,%d)", i, j)
			}
		}
	}
}

// Property: OLS residual is orthogonal to the centered inputs (normal
// equations), even with noisy data.
func TestFitNormalEquations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := 1 + rng.Intn(4)
		n := q + 5 + rng.Intn(60)
		x := randn(rng, q, n)
		fm := randn(rng, 2, n)
		m, err := Fit(x, fm)
		if err != nil {
			return false
		}
		res := mat.Sub(fm, m.PredictMatrix(x))
		// Residual must have zero mean per output (intercept) and zero
		// correlation with every input row.
		for i := 0; i < res.Rows(); i++ {
			if math.Abs(mat.Mean(res.Row(i))) > 1e-8 {
				return false
			}
			for qi := 0; qi < q; qi++ {
				if math.Abs(mat.Dot(res.Row(i), x.Row(qi)))/float64(n) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFitBeatsGuessingTheMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randn(rng, 2, 200)
	// f correlated with x plus noise.
	fm := mat.Add(mat.Mul(randn(rng, 3, 2), x), mat.Scale(0.1, randn(rng, 3, 200)))
	m, err := Fit(x, fm)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.PredictMatrix(x)
	meanModel := mat.Zeros(3, 200)
	for i := 0; i < 3; i++ {
		mu := mat.Mean(fm.Row(i))
		row := meanModel.Row(i)
		for j := range row {
			row[j] = mu
		}
	}
	if RMSE(pred, fm) >= RMSE(meanModel, fm) {
		t.Fatal("OLS no better than the mean on correlated data")
	}
}

func TestFitErrorsOnTooFewSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randn(rng, 5, 4)
	fm := randn(rng, 2, 4)
	if _, err := Fit(x, fm); err == nil {
		t.Fatal("expected error with fewer samples than coefficients")
	}
}

func TestFitErrorsOnDuplicateSensor(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := randn(rng, 1, 50)
	x := mat.Zeros(2, 50)
	for j := 0; j < 50; j++ {
		v := base.At(0, j)
		x.Set(0, j, v)
		x.Set(1, j, v)
	}
	fm := randn(rng, 1, 50)
	if _, err := Fit(x, fm); err == nil {
		t.Fatal("expected rank-deficiency error for duplicated sensor rows")
	}
}

func TestFitSampleMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Fit(mat.Zeros(2, 10), mat.Zeros(2, 11))
}

func TestRelativeError(t *testing.T) {
	truth := mat.FromRows([][]float64{{3, 4}})
	pred := mat.FromRows([][]float64{{3, 4}})
	if got := RelativeError(pred, truth); got != 0 {
		t.Fatalf("exact prediction error = %v", got)
	}
	pred2 := mat.FromRows([][]float64{{3, 4 + 0.5}})
	if got := RelativeError(pred2, truth); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelativeError = %v, want 0.1", got)
	}
	if got := RelativeError(pred, mat.Zeros(1, 2)); !math.IsInf(got, 1) {
		t.Fatalf("zero truth should give +Inf, got %v", got)
	}
}

func TestRMSEAndMaxAbs(t *testing.T) {
	truth := mat.FromRows([][]float64{{0, 0}, {0, 0}})
	pred := mat.FromRows([][]float64{{1, 1}, {1, 3}})
	if got := MaxAbsError(pred, truth); got != 3 {
		t.Fatalf("MaxAbsError = %v, want 3", got)
	}
	want := math.Sqrt((1 + 1 + 1 + 9) / 4.0)
	if got := RMSE(pred, truth); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %v, want %v", got, want)
	}
}

func TestModelDims(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, err := Fit(randn(rng, 3, 50), randn(rng, 7, 50))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumInputs() != 3 || m.NumOutputs() != 7 {
		t.Fatalf("dims = %d/%d, want 3/7", m.NumInputs(), m.NumOutputs())
	}
}
