// Package basis fits proper orthogonal decomposition (POD) bases from
// training voltage maps and moves traces between the full critical-node
// space and the rank-r coefficient space. A basis fitted on the K×N
// training matrix G (K critical nodes, N samples) retains the r dominant
// left singular vectors U_r; Project replaces every K-dimensional column
// with its r coefficients Uᵀ·g, and Lift maps predictions back with U·w.
// Because U has orthonormal columns, least-squares fits and group-lasso
// norms computed in coefficient space agree with the full-space ones up to
// the discarded (1−energy) tail, which is what makes placement and
// per-node regression O(r) instead of O(K).
package basis

import (
	"errors"
	"fmt"

	"voltsense/internal/mat"
)

// DefaultEnergy is the fraction of squared Frobenius energy captured when
// Config leaves both Rank and Energy unset.
const DefaultEnergy = 0.99

// Config selects the basis rank. Rank > 0 pins the rank exactly (clamped
// to the numerical rank of the training matrix); otherwise the smallest
// rank whose cumulative σ² reaches Energy (default DefaultEnergy) is used.
type Config struct {
	Rank   int
	Energy float64
}

// Basis is a fitted POD basis: U is K×r with orthonormal columns.
type Basis struct {
	u *mat.Matrix
	// s is the computed singular spectrum: full on the exact path, the
	// leading block on the truncated path; always ≥ the retained rank.
	s      []float64
	energy float64 // fraction of total energy captured by the retained rank
}

// truncFitDim is the smallest min(K, N) for which Fit switches from the
// exact ThinSVD to blocked subspace iteration. Below it the full Jacobi
// eigendecomposition costs next to nothing and its exactness is worth
// keeping (the r = K placement-equivalence guarantee rides on it).
const truncFitDim = 64

// Fit computes a POD basis from the K×N training matrix g. It fails on
// empty input or when the requested energy is outside (0, 1].
//
// When the requested rank (or the rank the energy target turns out to
// need) is small against min(K, N), the spectrum is computed by
// mat.TruncatedSVD — O(K·N·r) instead of the O(min(K,N)³) exact
// factorization — growing the block until the captured energy, measured
// against the exact ‖G‖_F², reaches the target. Full-rank requests and
// small problems always take the exact path.
func Fit(g *mat.Matrix, cfg Config) (*Basis, error) {
	if g.Rows() == 0 || g.Cols() == 0 {
		return nil, errors.New("basis: empty training matrix")
	}
	energy := cfg.Energy
	if energy == 0 {
		energy = DefaultEnergy
	}
	if energy <= 0 || energy > 1 {
		return nil, fmt.Errorf("basis: energy %g outside (0, 1]", cfg.Energy)
	}
	minDim := g.Rows()
	if g.Cols() < minDim {
		minDim = g.Cols()
	}
	if minDim > truncFitDim {
		if cfg.Rank > 0 && cfg.Rank < minDim {
			return fitTruncated(g, cfg.Rank, 0)
		}
		if cfg.Rank == 0 && energy < 1 {
			return fitTruncatedEnergy(g, energy, minDim)
		}
	}
	svd, err := mat.ThinSVD(g)
	if err != nil {
		return nil, fmt.Errorf("basis: %w", err)
	}
	return basisFromSVD(svd, cfg.Rank, energy)
}

// basisFromSVD picks the rank from an exact spectrum and assembles the
// basis. rank ≤ 0 means "smallest rank reaching energy".
func basisFromSVD(svd *mat.SVD, rank int, energy float64) (*Basis, error) {
	if len(svd.S) == 0 {
		return nil, errors.New("basis: training matrix has numerical rank 0")
	}
	if rank <= 0 {
		rank = RankForEnergy(svd.S, energy)
	}
	if rank > len(svd.S) {
		rank = len(svd.S)
	}
	return &Basis{
		u:      firstCols(svd.U, rank),
		s:      svd.S,
		energy: EnergyForRank(svd.S, rank),
	}, nil
}

// fitTruncated computes a pinned-rank basis via subspace iteration. fro2,
// when positive, is the precomputed squared Frobenius norm of the training
// matrix (the exact total energy); zero means compute it here.
func fitTruncated(g *mat.Matrix, rank int, fro2 float64) (*Basis, error) {
	svd, err := mat.TruncatedSVD(g, rank)
	if err != nil {
		return nil, fmt.Errorf("basis: %w", err)
	}
	if len(svd.S) == 0 {
		return nil, errors.New("basis: training matrix has numerical rank 0")
	}
	if rank > len(svd.S) {
		rank = len(svd.S) // numerical rank of g is below the request
	}
	if fro2 == 0 {
		f := g.FrobeniusNorm()
		fro2 = f * f
	}
	var sum float64
	for _, v := range svd.S[:rank] {
		sum += v * v
	}
	captured := 1.0
	if fro2 > 0 {
		captured = sum / fro2
		if captured > 1 {
			captured = 1
		}
	}
	return &Basis{
		u:      firstCols(svd.U, rank),
		s:      svd.S,
		energy: captured,
	}, nil
}

// fitTruncatedEnergy grows the truncated spectrum until the captured
// energy — measured against the exact ‖G‖_F², so the check is conservative
// — reaches the target, then keeps the smallest sufficient prefix. If the
// target needs a rank comparable to min(K, N) it falls back to the exact
// factorization.
func fitTruncatedEnergy(g *mat.Matrix, energy float64, minDim int) (*Basis, error) {
	f := g.FrobeniusNorm()
	fro2 := f * f
	for k := 16; ; k *= 2 {
		if k*2 >= minDim {
			break // truncation no longer pays; use the exact path
		}
		svd, err := mat.TruncatedSVD(g, k)
		if err != nil {
			return nil, fmt.Errorf("basis: %w", err)
		}
		var sum float64
		rank := 0
		for _, v := range svd.S {
			sum += v * v
			rank++
			if sum >= energy*fro2 {
				return fitFromPrefix(svd, rank, sum, fro2)
			}
		}
		if len(svd.S) < k {
			// The whole numerical spectrum fits in the block: nothing more
			// to capture, keep everything.
			return fitFromPrefix(svd, len(svd.S), sum, fro2)
		}
	}
	svd, err := mat.ThinSVD(g)
	if err != nil {
		return nil, fmt.Errorf("basis: %w", err)
	}
	return basisFromSVD(svd, 0, energy)
}

// fitFromPrefix assembles a basis from the leading rank triplets of a
// truncated spectrum with captured energy sum/fro2.
func fitFromPrefix(svd *mat.SVD, rank int, sum, fro2 float64) (*Basis, error) {
	if rank == 0 {
		return nil, errors.New("basis: training matrix has numerical rank 0")
	}
	captured := 1.0
	if fro2 > 0 {
		captured = sum / fro2
		if captured > 1 {
			captured = 1
		}
	}
	return &Basis{
		u:      firstCols(svd.U, rank),
		s:      svd.S,
		energy: captured,
	}, nil
}

// Rank returns the number of retained basis vectors r.
func (b *Basis) Rank() int { return b.u.Cols() }

// Nodes returns the full-space dimension K the basis was fitted on.
func (b *Basis) Nodes() int { return b.u.Rows() }

// EnergyCaptured returns the fraction of training Σσ² the retained rank
// explains.
func (b *Basis) EnergyCaptured() float64 { return b.energy }

// SingularValues returns a copy of the computed training spectrum: the
// full numerical spectrum when the exact factorization ran, or the leading
// block (at least the retained rank) when the truncated path did.
func (b *Basis) SingularValues() []float64 {
	out := make([]float64, len(b.s))
	copy(out, b.s)
	return out
}

// Components returns a copy of the K×r basis matrix U.
func (b *Basis) Components() *mat.Matrix { return b.u.Clone() }

// Project maps a K×N full-space matrix to the r×N coefficient matrix Uᵀ·g.
func (b *Basis) Project(g *mat.Matrix) (*mat.Matrix, error) {
	if g.Rows() != b.Nodes() {
		return nil, fmt.Errorf("basis: Project: %d rows, basis has %d nodes", g.Rows(), b.Nodes())
	}
	return mat.Mul(b.u.T(), g), nil
}

// ProjectVec maps one K-vector to its r coefficients.
func (b *Basis) ProjectVec(v []float64) ([]float64, error) {
	if len(v) != b.Nodes() {
		return nil, fmt.Errorf("basis: ProjectVec: %d entries, basis has %d nodes", len(v), b.Nodes())
	}
	return mat.MulTVec(b.u, v), nil
}

// Lift maps an r×N coefficient matrix back to the K×N full space via U·w.
func (b *Basis) Lift(w *mat.Matrix) (*mat.Matrix, error) {
	if w.Rows() != b.Rank() {
		return nil, fmt.Errorf("basis: Lift: %d rows, basis has rank %d", w.Rows(), b.Rank())
	}
	return mat.Mul(b.u, w), nil
}

// LiftVec maps one r-coefficient vector back to a K-vector.
func (b *Basis) LiftVec(w []float64) ([]float64, error) {
	if len(w) != b.Rank() {
		return nil, fmt.Errorf("basis: LiftVec: %d entries, basis has rank %d", len(w), b.Rank())
	}
	return mat.MulVec(b.u, w), nil
}

// RankForEnergy returns the smallest prefix of the descending spectrum s
// whose cumulative σ² reaches the given energy fraction.
func RankForEnergy(s []float64, energy float64) int {
	var total float64
	for _, v := range s {
		total += v * v
	}
	if total == 0 {
		return len(s)
	}
	var sum float64
	for i, v := range s {
		sum += v * v
		if sum >= energy*total {
			return i + 1
		}
	}
	return len(s)
}

// EnergyForRank returns the fraction of Σσ² the leading r values explain.
func EnergyForRank(s []float64, r int) float64 {
	if r > len(s) {
		r = len(s)
	}
	var total, sum float64
	for i, v := range s {
		if i < r {
			sum += v * v
		}
		total += v * v
	}
	if total == 0 {
		return 1
	}
	return sum / total
}

// firstCols copies the leading k columns of m.
func firstCols(m *mat.Matrix, k int) *mat.Matrix {
	out := mat.Zeros(m.Rows(), k)
	for i := 0; i < m.Rows(); i++ {
		copy(out.Row(i), m.Row(i)[:k])
	}
	return out
}
