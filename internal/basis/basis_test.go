package basis

import (
	"math"
	"math/rand"
	"testing"

	"voltsense/internal/mat"
)

func randMatrix(rng *rand.Rand, r, c int) *mat.Matrix {
	m := mat.Zeros(r, c)
	for i := 0; i < r; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	return m
}

// lowRank builds a K×N matrix of exact rank r.
func lowRank(rng *rand.Rand, k, n, r int) *mat.Matrix {
	return mat.Mul(randMatrix(rng, k, r), randMatrix(rng, r, n))
}

func TestFitRankPinsRank(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randMatrix(rng, 12, 40)
	b, err := Fit(g, Config{Rank: 5})
	if err != nil {
		t.Fatal(err)
	}
	if b.Rank() != 5 || b.Nodes() != 12 {
		t.Fatalf("rank %d nodes %d, want 5 and 12", b.Rank(), b.Nodes())
	}
	// Requesting more than the numerical rank clamps.
	b, err = Fit(lowRank(rng, 12, 40, 3), Config{Rank: 10})
	if err != nil {
		t.Fatal(err)
	}
	if b.Rank() != 3 {
		t.Fatalf("rank %d on rank-3 data, want clamp to 3", b.Rank())
	}
}

func TestFitEnergyKnob(t *testing.T) {
	// Spectrum engineered by scaling orthogonal-ish rows: energy fractions
	// must be monotone in rank and the chosen rank minimal.
	rng := rand.New(rand.NewSource(2))
	g := randMatrix(rng, 10, 50)
	b, err := Fit(g, Config{Energy: 0.90})
	if err != nil {
		t.Fatal(err)
	}
	s := b.SingularValues()
	r := b.Rank()
	if got := EnergyForRank(s, r); got < 0.90 {
		t.Fatalf("rank %d captures %g < 0.90", r, got)
	}
	if r > 1 {
		if got := EnergyForRank(s, r-1); got >= 0.90 {
			t.Fatalf("rank %d not minimal: rank %d already captures %g", r, r-1, got)
		}
	}
	if math.Abs(b.EnergyCaptured()-EnergyForRank(s, r)) > 1e-12 {
		t.Fatalf("EnergyCaptured %g != EnergyForRank %g", b.EnergyCaptured(), EnergyForRank(s, r))
	}
}

func TestProjectLiftRoundTrip(t *testing.T) {
	// Data of exact rank 4 with a rank-4 basis: lift(project(g)) == g.
	rng := rand.New(rand.NewSource(3))
	g := lowRank(rng, 15, 30, 4)
	b, err := Fit(g, Config{Rank: 4})
	if err != nil {
		t.Fatal(err)
	}
	w, err := b.Project(g)
	if err != nil {
		t.Fatal(err)
	}
	if w.Rows() != 4 || w.Cols() != 30 {
		t.Fatalf("projected shape %dx%d, want 4x30", w.Rows(), w.Cols())
	}
	back, err := b.Lift(w)
	if err != nil {
		t.Fatal(err)
	}
	scale := g.FrobeniusNorm()
	if d := mat.FrobeniusDistance(back, g); d > 1e-8*scale {
		t.Fatalf("round-trip error %g (scale %g)", d, scale)
	}
}

func TestProjectLiftVec(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randMatrix(rng, 9, 25)
	b, err := Fit(g, Config{Rank: 9})
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float64, 9)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	w, err := b.ProjectVec(v)
	if err != nil {
		t.Fatal(err)
	}
	back, err := b.LiftVec(w)
	if err != nil {
		t.Fatal(err)
	}
	// Full-rank basis on 9 training directions spans R⁹: exact round trip.
	for i := range v {
		if math.Abs(back[i]-v[i]) > 1e-9 {
			t.Fatalf("entry %d: %g != %g", i, back[i], v[i])
		}
	}
}

func TestFullRankLossless(t *testing.T) {
	// r = K on full-rank training data: the basis is a square orthogonal
	// rotation, so projection loses nothing on arbitrary new data.
	rng := rand.New(rand.NewSource(5))
	g := randMatrix(rng, 8, 40)
	b, err := Fit(g, Config{Rank: 8})
	if err != nil {
		t.Fatal(err)
	}
	if b.EnergyCaptured() < 1-1e-12 {
		t.Fatalf("full-rank basis captures %g < 1", b.EnergyCaptured())
	}
	fresh := randMatrix(rng, 8, 7)
	w, err := b.Project(fresh)
	if err != nil {
		t.Fatal(err)
	}
	back, err := b.Lift(w)
	if err != nil {
		t.Fatal(err)
	}
	if d := mat.FrobeniusDistance(back, fresh); d > 1e-8*fresh.FrobeniusNorm() {
		t.Fatalf("full-rank round trip error %g", d)
	}
}

func TestFitErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randMatrix(rng, 4, 4)
	if _, err := Fit(mat.Zeros(0, 5), Config{}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Fit(g, Config{Energy: 1.5}); err == nil {
		t.Fatal("energy > 1 accepted")
	}
	if _, err := Fit(g, Config{Energy: -0.2}); err == nil {
		t.Fatal("negative energy accepted")
	}
	b, err := Fit(g, Config{Rank: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Project(mat.Zeros(5, 3)); err == nil {
		t.Fatal("shape-mismatched Project accepted")
	}
	if _, err := b.Lift(mat.Zeros(3, 3)); err == nil {
		t.Fatal("shape-mismatched Lift accepted")
	}
	if _, err := b.ProjectVec(make([]float64, 5)); err == nil {
		t.Fatal("shape-mismatched ProjectVec accepted")
	}
	if _, err := b.LiftVec(make([]float64, 3)); err == nil {
		t.Fatal("shape-mismatched LiftVec accepted")
	}
}

// TestFitTruncatedPathMatchesExact drives Fit over the subspace-iteration
// path (min dimension above the truncFitDim switch) and checks both the
// energy mode and the pinned-rank mode against a Fit on the exact spectrum
// of the same matrix.
func TestFitTruncatedPathMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := lowRank(rng, 150, 260, 30)
	exact, err := mat.ThinSVD(g)
	if err != nil {
		t.Fatal(err)
	}

	b, err := Fit(g, Config{Energy: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	wantRank := RankForEnergy(exact.S, 0.99)
	if b.Rank() != wantRank {
		t.Fatalf("truncated energy fit picked rank %d, exact spectrum says %d", b.Rank(), wantRank)
	}
	if b.EnergyCaptured() < 0.99 {
		t.Fatalf("energy captured %g below target", b.EnergyCaptured())
	}
	for i, v := range b.SingularValues()[:b.Rank()] {
		if rel := (v - exact.S[i]) / exact.S[i]; rel > 1e-6 || rel < -1e-6 {
			t.Fatalf("σ[%d]: truncated %g vs exact %g", i, v, exact.S[i])
		}
	}

	// Pinned-rank mode on a decaying spectrum (the POD regime, where the
	// cut has a real gap): the truncated basis must capture the energy the
	// exact leading-7 subspace does.
	gd := mat.Zeros(150, 260)
	sigma := 1.0
	for k := 0; k < 40; k++ {
		u, v := randMatrix(rng, 150, 1), randMatrix(rng, 1, 260)
		for i := 0; i < 150; i++ {
			row := gd.Row(i)
			for j := 0; j < 260; j++ {
				row[j] += sigma * u.At(i, 0) * v.At(0, j)
			}
		}
		sigma *= 0.75
	}
	exactD, err := mat.ThinSVD(gd)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := Fit(gd, Config{Rank: 7})
	if err != nil {
		t.Fatal(err)
	}
	if bp.Rank() != 7 {
		t.Fatalf("pinned truncated rank %d, want 7", bp.Rank())
	}
	w, err := bp.Project(gd)
	if err != nil {
		t.Fatal(err)
	}
	captured := w.FrobeniusNorm()
	var want float64
	for _, v := range exactD.S[:7] {
		want += v * v
	}
	want = math.Sqrt(want)
	if rel := (want - captured) / want; rel > 1e-9 {
		t.Fatalf("pinned truncated basis captures %g, exact rank-7 captures %g", captured, want)
	}
}
