package registry

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeStore is an in-memory Source whose artifacts are version-stamped
// strings; fingerprints are the version numbers, so bumping a version is
// "rewriting the artifact".
type fakeStore struct {
	mu       sync.Mutex
	versions map[string]int
	loads    atomic.Int64
	loadGate chan struct{} // when non-nil, Load blocks until it closes
	failLoad map[string]error
}

func newFakeStore(ids ...string) *fakeStore {
	s := &fakeStore{versions: make(map[string]int), failLoad: make(map[string]error)}
	for _, id := range ids {
		s.versions[id] = 1
	}
	return s
}

func (s *fakeStore) bump(id string) {
	s.mu.Lock()
	s.versions[id]++
	s.mu.Unlock()
}

func (s *fakeStore) remove(id string) {
	s.mu.Lock()
	delete(s.versions, id)
	s.mu.Unlock()
}

func (s *fakeStore) source() Source {
	return Source{
		List: func() ([]string, error) {
			s.mu.Lock()
			defer s.mu.Unlock()
			ids := make([]string, 0, len(s.versions))
			for id := range s.versions {
				ids = append(ids, id)
			}
			return ids, nil
		},
		Stat: func(id string) (string, error) {
			s.mu.Lock()
			defer s.mu.Unlock()
			v, ok := s.versions[id]
			if !ok {
				return "", fmt.Errorf("%s: %w", id, fs.ErrNotExist)
			}
			return fmt.Sprintf("v%d", v), nil
		},
		Load: func(id string) (any, string, error) {
			if gate := s.loadGate; gate != nil {
				<-gate
			}
			s.loads.Add(1)
			s.mu.Lock()
			defer s.mu.Unlock()
			if err := s.failLoad[id]; err != nil {
				return nil, "", err
			}
			v, ok := s.versions[id]
			if !ok {
				return nil, "", fmt.Errorf("%s: %w", id, fs.ErrNotExist)
			}
			return fmt.Sprintf("%s@v%d", id, v), fmt.Sprintf("v%d", v), nil
		},
	}
}

func mustGet(t *testing.T, r *Registry, id string) string {
	t.Helper()
	v, err := r.Get(id)
	if err != nil {
		t.Fatalf("Get(%s): %v", id, err)
	}
	return v.(string)
}

func TestGetLoadsAndCaches(t *testing.T) {
	st := newFakeStore("a")
	r, err := New(Config{Source: st.source()})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustGet(t, r, "a"); got != "a@v1" {
		t.Fatalf("got %q", got)
	}
	mustGet(t, r, "a")
	mustGet(t, r, "a")
	if st.loads.Load() != 1 {
		t.Fatalf("loads = %d, want 1 (cache hit path)", st.loads.Load())
	}
	if _, err := r.Get("missing"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing tenant error = %v, want fs.ErrNotExist", err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d (failed load must not insert)", r.Len())
	}
}

// TestSingleFlightConcurrentFirstRequests hammers a cold tenant from many
// goroutines while the store's Load is gated shut: exactly one Load may
// happen, and every caller gets its value.
func TestSingleFlightConcurrentFirstRequests(t *testing.T) {
	st := newFakeStore("a")
	st.loadGate = make(chan struct{})
	r, err := New(Config{Source: st.source()})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 32
	var wg sync.WaitGroup
	got := make([]string, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := r.Get("a")
			errs[i] = err
			if err == nil {
				got[i] = v.(string)
			}
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let the callers pile onto the gate
	close(st.loadGate)
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if got[i] != "a@v1" {
			t.Fatalf("caller %d got %q", i, got[i])
		}
	}
	if st.loads.Load() != 1 {
		t.Fatalf("loads = %d, want 1 (single flight)", st.loads.Load())
	}
}

func TestLRUCapacityEvictsIdleNeverPinned(t *testing.T) {
	st := newFakeStore("default", "a", "b", "c")
	var retired []string
	r, err := New(Config{
		Source:   st.source(),
		Pinned:   "default",
		Capacity: 2,
		OnRetire: func(id string, v any, replaced bool) {
			if replaced {
				t.Errorf("capacity eviction of %s reported as replaced", id)
			}
			retired = append(retired, id)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mustGet(t, r, "default")
	mustGet(t, r, "a") // resident: default, a
	mustGet(t, r, "b") // over capacity: default pinned, a is LRU → retired
	if fmt.Sprint(retired) != "[a]" {
		t.Fatalf("retired = %v, want [a]", retired)
	}
	if fmt.Sprint(r.Resident()) != "[b default]" {
		t.Fatalf("resident = %v", r.Resident())
	}
	// Touch b so default stays least-recently-used among... it is pinned:
	// loading c must evict b, not default, even though default is older.
	mustGet(t, r, "c")
	if fmt.Sprint(retired) != "[a b]" {
		t.Fatalf("retired = %v, want [a b]", retired)
	}
	if fmt.Sprint(r.Resident()) != "[c default]" {
		t.Fatalf("resident = %v (pinned default evicted?)", r.Resident())
	}
	if r.Evictions() != 2 {
		t.Fatalf("Evictions = %d", r.Evictions())
	}
	// Evicted tenants reload on demand — eviction is not removal.
	if got := mustGet(t, r, "a"); got != "a@v1" {
		t.Fatalf("re-Get after eviction: %q", got)
	}
}

func TestEvictIdleRespectsTTLAndPin(t *testing.T) {
	st := newFakeStore("default", "a", "b")
	r, err := New(Config{Source: st.source(), Pinned: "default", Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	mustGet(t, r, "default")
	mustGet(t, r, "a")
	mustGet(t, r, "b")
	if got := r.EvictIdle(time.Hour); len(got) != 0 {
		t.Fatalf("fresh tenants evicted: %v", got)
	}
	time.Sleep(5 * time.Millisecond)
	mustGet(t, r, "b") // refresh b's recency; a and default stay idle
	if got := r.EvictIdle(2 * time.Millisecond); fmt.Sprint(got) != "[a]" {
		t.Fatalf("EvictIdle = %v, want [a] (pinned default must survive)", got)
	}
	if fmt.Sprint(r.Resident()) != "[b default]" {
		t.Fatalf("resident = %v", r.Resident())
	}
}

func TestRescanSwapsOnlyChangedTenants(t *testing.T) {
	st := newFakeStore("default", "a", "b")
	var replaced, dropped []string
	r, err := New(Config{
		Source: st.source(),
		Pinned: "default",
		OnRetire: func(id string, v any, wasReplaced bool) {
			if wasReplaced {
				replaced = append(replaced, id)
			} else {
				dropped = append(dropped, id)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	vDefault, vA, vB := mustGet(t, r, "default"), mustGet(t, r, "a"), mustGet(t, r, "b")

	// No changes: rescan is a no-op and rebuilds nothing.
	res := r.Rescan()
	if len(res.Reloaded)+len(res.Removed)+len(res.Failed) != 0 {
		t.Fatalf("no-op rescan = %+v", res)
	}
	if st.loads.Load() != 3 {
		t.Fatalf("no-op rescan reloaded something: %d loads", st.loads.Load())
	}

	// Bump a, remove b: only a is swapped, b retired, default untouched.
	st.bump("a")
	st.remove("b")
	res = r.Rescan()
	if fmt.Sprint(res.Reloaded) != "[a]" || fmt.Sprint(res.Removed) != "[b]" || len(res.Failed) != 0 {
		t.Fatalf("rescan = %+v", res)
	}
	if got := mustGet(t, r, "a"); got != "a@v2" || got == vA {
		t.Fatalf("a after rescan = %q", got)
	}
	if got := mustGet(t, r, "default"); got != vDefault {
		t.Fatalf("untouched default was rebuilt: %q vs %q", got, vDefault)
	}
	if _, ok := r.Peek("b"); ok {
		t.Fatalf("removed tenant %q still resident", vB)
	}
	if fmt.Sprint(replaced) != "[a]" || fmt.Sprint(dropped) != "[b]" {
		t.Fatalf("retire callbacks: replaced=%v dropped=%v", replaced, dropped)
	}

	// A failing reload keeps the previous value serving.
	st.bump("default")
	st.failLoad["default"] = errors.New("artifact corrupt")
	res = r.Rescan()
	if res.Err() == nil || res.Failed["default"] == nil {
		t.Fatalf("rescan with corrupt artifact = %+v", res)
	}
	if got := mustGet(t, r, "default"); got != vDefault {
		t.Fatalf("failed reload replaced the serving value: %q", got)
	}
}

func TestValidID(t *testing.T) {
	for _, ok := range []string{"default", "chip-a", "wafer_7.lot9", "A1"} {
		if !ValidID(ok) {
			t.Errorf("ValidID(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", ".", "..", "../x", "a/b", "a\\b", "-flag", ".hidden",
		"x y", "tenant\x00", string(make([]byte, 65))} {
		if ValidID(bad) {
			t.Errorf("ValidID(%q) = true", bad)
		}
	}
}

func TestDirLayout(t *testing.T) {
	dir := t.TempDir()
	d := Dir{Path: dir}
	if err := os.WriteFile(filepath.Join(dir, "chipA.json"), []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte(`x`), 0o644); err != nil {
		t.Fatal(err)
	}
	ids, err := d.List()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ids) != "[chipA]" {
		t.Fatalf("List = %v", ids)
	}
	if _, err := d.Stat("chipA"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Stat("missing"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Stat(missing) = %v", err)
	}
	if _, err := d.File("../escape"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("traversal id accepted: %v", err)
	}
}

func TestRescanEvictsDeletedArtifactsExactlyOnce(t *testing.T) {
	st := newFakeStore("default", "gone")
	var dropped []string
	r, err := New(Config{
		Source: st.source(),
		Pinned: "default",
		OnRetire: func(id string, v any, wasReplaced bool) {
			if !wasReplaced {
				dropped = append(dropped, id)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mustGet(t, r, "default")
	mustGet(t, r, "gone")

	st.remove("gone")
	res := r.Rescan()
	if fmt.Sprint(res.Removed) != "[gone]" {
		t.Fatalf("rescan after delete = %+v", res)
	}
	if _, ok := r.Peek("gone"); ok {
		t.Fatal("deleted tenant still resident after rescan")
	}
	if fmt.Sprint(dropped) != "[gone]" {
		t.Fatalf("retire callbacks for deleted tenant: %v", dropped)
	}
	// Exactly one eviction per removed tenant — the retire path counts it;
	// a second count would make the metric lie about cache churn.
	if got := r.Evictions(); got != 1 {
		t.Fatalf("Evictions() = %d after one removal, want 1", got)
	}
	// The retired tenant must not serve stale: a fresh Get sees the store.
	if _, err := r.Get("gone"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Get after removal = %v, want fs.ErrNotExist", err)
	}
	// A second rescan is a no-op: the tenant is no longer resident.
	res = r.Rescan()
	if len(res.Removed) != 0 || r.Evictions() != 1 {
		t.Fatalf("second rescan = %+v, evictions = %d", res, r.Evictions())
	}
}

func TestRefreshForceReloadsSingleTenant(t *testing.T) {
	st := newFakeStore("default", "a", "b")
	var replaced, dropped []string
	r, err := New(Config{
		Source: st.source(),
		Pinned: "default",
		OnRetire: func(id string, v any, wasReplaced bool) {
			if wasReplaced {
				replaced = append(replaced, id)
			} else {
				dropped = append(dropped, id)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mustGet(t, r, "a")
	mustGet(t, r, "b")

	// Refresh swaps the resident value even though Get would have cached it.
	st.bump("a")
	if err := r.Refresh("a"); err != nil {
		t.Fatal(err)
	}
	if got := mustGet(t, r, "a"); got != "a@v2" {
		t.Fatalf("a after refresh = %q", got)
	}
	if fmt.Sprint(replaced) != "[a]" {
		t.Fatalf("refresh retire callbacks: %v", replaced)
	}
	if _, ok := r.Peek("b"); !ok {
		t.Fatal("refresh of a rebuilt unrelated tenant b")
	}

	// Refreshing a cold tenant loads it like Get.
	if err := r.Refresh("default"); err != nil {
		t.Fatal(err)
	}
	if v, ok := r.Peek("default"); !ok || v.(string) != "default@v1" {
		t.Fatalf("cold refresh: %v %v", v, ok)
	}

	// Refreshing a vanished tenant evicts the resident entry.
	st.remove("b")
	if err := r.Refresh("b"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("refresh of deleted tenant = %v", err)
	}
	if _, ok := r.Peek("b"); ok {
		t.Fatal("deleted tenant still resident after refresh")
	}
	if fmt.Sprint(dropped) != "[b]" {
		t.Fatalf("dropped callbacks: %v", dropped)
	}
}
