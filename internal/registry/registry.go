// Package registry keys the fleet: a cache of per-tenant runtime values
// (one per chip/floorplan id) built on demand from an artifact store. The
// paper fits one predictor per chip instance; a fleet server hosts many of
// them at once, and this package decides which ones are resident.
//
// The registry is deliberately agnostic about what it caches — the serve
// layer stores its whole per-tenant runtime (predictor, fault guard, online
// adapter, monitor pool) as the value — and about where artifacts live: a
// Source supplies List/Stat/Load functions, with Dir providing the standard
// filesystem layout (<dir>/<tenant-id>.json).
//
// Semantics:
//
//   - Get is single-flight: concurrent first requests for a cold tenant
//     trigger exactly one Source.Load; the rest wait for it.
//   - The cache is LRU-bounded by Capacity. The Pinned id (the default
//     tenant) is never evicted, no matter how idle.
//   - Rescan re-stats every resident tenant and atomically swaps only those
//     whose fingerprint changed; untouched tenants keep their value — and
//     with it any accumulated runtime state. Artifacts that vanished are
//     retired; artifacts that fail to load keep their previous value
//     serving and are reported as failed.
//   - EvictIdle retires tenants that have not been touched within a TTL,
//     bounding memory (and metric cardinality) on long-tailed fleets.
package registry

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Source supplies artifacts to the registry. Load builds the cached value
// for one id and reports the fingerprint of the bytes it consumed; Stat
// returns the current fingerprint without loading, so Rescan can skip
// unchanged tenants. Both report fs.ErrNotExist (possibly wrapped) for ids
// that are not in the store.
type Source struct {
	// List enumerates the ids currently in the store. Optional; used for
	// startup validation and operator introspection, never to preload.
	List func() ([]string, error)
	// Stat returns a cheap fingerprint for the id's artifact. Required.
	Stat func(id string) (string, error)
	// Load builds the value and returns the fingerprint it was built from.
	// Required.
	Load func(id string) (value any, fingerprint string, err error)
}

// Config parameterizes a Registry.
type Config struct {
	Source Source
	// Pinned is the id exempt from every eviction path (the default
	// tenant). It may be empty.
	Pinned string
	// Capacity bounds resident tenants; past it the least-recently-used
	// unpinned tenant is retired. Default 64.
	Capacity int
	// OnRetire, when non-nil, observes every value leaving the cache:
	// capacity/idle eviction and removal (replaced=false) or a Rescan swap
	// (replaced=true). Called without registry locks held; it must not call
	// back into the Registry.
	OnRetire func(id string, value any, replaced bool)
}

type entry struct {
	value any
	fp    string
	seq   uint64    // recency rank; larger = more recent
	last  time.Time // wall-clock recency for EvictIdle
}

// call is one in-flight single-flight load.
type call struct {
	done chan struct{}
	v    any
	err  error
}

// Registry is the LRU-bounded tenant cache. All methods are safe for
// concurrent use.
type Registry struct {
	cfg Config

	mu       sync.Mutex
	seq      uint64
	entries  map[string]*entry
	inflight map[string]*call

	rescanMu sync.Mutex // serializes Rescan passes

	loads     atomic.Uint64
	evictions atomic.Uint64
}

// New validates cfg and builds an empty registry.
func New(cfg Config) (*Registry, error) {
	if cfg.Source.Stat == nil || cfg.Source.Load == nil {
		return nil, errors.New("registry: Source.Stat and Source.Load are required")
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 64
	}
	return &Registry{
		cfg:      cfg,
		entries:  make(map[string]*entry),
		inflight: make(map[string]*call),
	}, nil
}

// Get returns the value for id, loading it on a miss. Concurrent misses for
// the same id share one load. Loading an id past Capacity retires the
// least-recently-used unpinned tenant.
func (r *Registry) Get(id string) (any, error) {
	r.mu.Lock()
	if e, ok := r.entries[id]; ok {
		r.seq++
		e.seq = r.seq
		e.last = time.Now()
		v := e.value
		r.mu.Unlock()
		return v, nil
	}
	if c, ok := r.inflight[id]; ok {
		r.mu.Unlock()
		<-c.done
		return c.v, c.err
	}
	c := &call{done: make(chan struct{})}
	r.inflight[id] = c
	r.mu.Unlock()

	v, fp, err := r.cfg.Source.Load(id)
	r.loads.Add(1)

	var retired []retiredEntry
	r.mu.Lock()
	delete(r.inflight, id)
	if err == nil {
		r.seq++
		r.entries[id] = &entry{value: v, fp: fp, seq: r.seq, last: time.Now()}
		retired = r.evictOverCapacityLocked()
	}
	r.mu.Unlock()
	c.v, c.err = v, err
	close(c.done)
	r.retire(retired, false)
	return v, err
}

// Peek returns the resident value without loading or touching recency.
func (r *Registry) Peek(id string) (any, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return nil, false
	}
	return e.value, true
}

// Resident returns the resident ids in sorted order.
func (r *Registry) Resident() []string {
	r.mu.Lock()
	ids := make([]string, 0, len(r.entries))
	for id := range r.entries {
		ids = append(ids, id)
	}
	r.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// Len reports the number of resident tenants.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Loads reports cumulative Source.Load calls (tests and metrics).
func (r *Registry) Loads() uint64 { return r.loads.Load() }

// Evictions reports cumulative capacity/idle evictions and removals.
func (r *Registry) Evictions() uint64 { return r.evictions.Load() }

type retiredEntry struct {
	id string
	v  any
}

// evictOverCapacityLocked trims the cache to Capacity, least-recently-used
// first, never touching the pinned id. Caller holds r.mu; returned entries
// must be passed to retire after unlocking.
func (r *Registry) evictOverCapacityLocked() []retiredEntry {
	var out []retiredEntry
	for len(r.entries) > r.cfg.Capacity {
		victim := ""
		var vseq uint64
		for id, e := range r.entries {
			if id == r.cfg.Pinned {
				continue
			}
			if victim == "" || e.seq < vseq {
				victim, vseq = id, e.seq
			}
		}
		if victim == "" {
			return out // only the pinned tenant left
		}
		out = append(out, retiredEntry{victim, r.entries[victim].value})
		delete(r.entries, victim)
	}
	return out
}

func (r *Registry) retire(list []retiredEntry, replaced bool) {
	for _, re := range list {
		if !replaced {
			r.evictions.Add(1)
		}
		if r.cfg.OnRetire != nil {
			r.cfg.OnRetire(re.id, re.v, replaced)
		}
	}
}

// EvictIdle retires every unpinned tenant whose last Get is older than
// maxIdle, returning the retired ids in sorted order.
func (r *Registry) EvictIdle(maxIdle time.Duration) []string {
	cutoff := time.Now().Add(-maxIdle)
	var retired []retiredEntry
	r.mu.Lock()
	for id, e := range r.entries {
		if id == r.cfg.Pinned || !e.last.Before(cutoff) {
			continue
		}
		retired = append(retired, retiredEntry{id, e.value})
	}
	for _, re := range retired {
		delete(r.entries, re.id)
	}
	r.mu.Unlock()
	sort.Slice(retired, func(i, j int) bool { return retired[i].id < retired[j].id })
	r.retire(retired, false)
	ids := make([]string, len(retired))
	for i, re := range retired {
		ids[i] = re.id
	}
	return ids
}

// RescanResult reports what one Rescan pass did.
type RescanResult struct {
	// Reloaded tenants had a changed fingerprint and were atomically
	// swapped to a freshly loaded value.
	Reloaded []string
	// Removed tenants' artifacts vanished from the store.
	Removed []string
	// Failed maps tenants whose reload errored; their previous value keeps
	// serving.
	Failed map[string]error
}

// Err flattens Failed into one error, or nil when the pass was clean.
func (res RescanResult) Err() error {
	if len(res.Failed) == 0 {
		return nil
	}
	ids := make([]string, 0, len(res.Failed))
	for id := range res.Failed {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	errs := make([]error, 0, len(ids))
	for _, id := range ids {
		errs = append(errs, fmt.Errorf("tenant %s: %w", id, res.Failed[id]))
	}
	return errors.Join(errs...)
}

// Rescan re-stats every resident tenant against the store and atomically
// swaps only those whose fingerprint changed. Untouched tenants are not
// rebuilt — they keep their value and every bit of runtime state hanging
// off it. Vanished artifacts are retired; failed reloads keep the previous
// value serving. Passes are serialized; Get keeps working throughout.
func (r *Registry) Rescan() RescanResult {
	r.rescanMu.Lock()
	defer r.rescanMu.Unlock()
	res := RescanResult{Failed: make(map[string]error)}

	r.mu.Lock()
	ids := make([]string, 0, len(r.entries))
	fps := make(map[string]string, len(r.entries))
	for id, e := range r.entries {
		ids = append(ids, id)
		fps[id] = e.fp
	}
	r.mu.Unlock()
	sort.Strings(ids)

	for _, id := range ids {
		fp, err := r.cfg.Source.Stat(id)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				r.mu.Lock()
				e := r.entries[id]
				delete(r.entries, id)
				r.mu.Unlock()
				if e != nil {
					res.Removed = append(res.Removed, id)
					r.retire([]retiredEntry{{id, e.value}}, false)
				}
				continue
			}
			res.Failed[id] = err
			continue
		}
		if fp == fps[id] {
			continue
		}
		v, newFp, err := r.cfg.Source.Load(id)
		r.loads.Add(1)
		if err != nil {
			res.Failed[id] = err
			continue
		}
		r.mu.Lock()
		old := r.entries[id]
		r.seq++
		r.entries[id] = &entry{value: v, fp: newFp, seq: r.seq, last: time.Now()}
		r.mu.Unlock()
		res.Reloaded = append(res.Reloaded, id)
		if old != nil {
			r.retire([]retiredEntry{{id, old.value}}, true)
		}
	}
	return res
}

// Refresh force-reloads one tenant from the store regardless of its
// fingerprint: a resident value is atomically swapped (the old value retires
// as replaced), an absent one is loaded as by Get. Unlike Rescan it targets
// a single id, so a calibration write does not pay a full-store stat sweep.
// When the artifact has vanished, a resident entry is evicted — matching
// Rescan's removal semantics — and the load error is returned.
func (r *Registry) Refresh(id string) error {
	v, fp, err := r.cfg.Source.Load(id)
	r.loads.Add(1)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			r.mu.Lock()
			e := r.entries[id]
			delete(r.entries, id)
			r.mu.Unlock()
			if e != nil {
				r.retire([]retiredEntry{{id, e.value}}, false)
			}
		}
		return err
	}
	var retired []retiredEntry
	r.mu.Lock()
	old := r.entries[id]
	r.seq++
	r.entries[id] = &entry{value: v, fp: fp, seq: r.seq, last: time.Now()}
	retired = r.evictOverCapacityLocked()
	r.mu.Unlock()
	if old != nil {
		r.retire([]retiredEntry{{id, old.value}}, true)
	}
	r.retire(retired, false)
	return nil
}

// ValidID reports whether id is acceptable as a tenant id: 1-64 characters
// from [A-Za-z0-9._-], not starting with a dot or dash (which also rules
// out path traversal through the Dir layout).
func ValidID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	if id[0] == '.' || id[0] == '-' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// Dir is the standard filesystem artifact layout: one JSON artifact per
// tenant — a full voltsense-predictor/v1 model, or a thin voltsense-delta/v1
// that the serve layer resolves against its pinned prior — named <id>.json,
// flat in one directory.
type Dir struct{ Path string }

// File maps a tenant id to its artifact path, rejecting invalid ids before
// they can reach the filesystem.
func (d Dir) File(id string) (string, error) {
	if !ValidID(id) {
		return "", fmt.Errorf("registry: invalid tenant id %q: %w", id, fs.ErrNotExist)
	}
	return filepath.Join(d.Path, id+".json"), nil
}

// List enumerates the tenant ids present in the directory.
func (d Dir) List() ([]string, error) {
	ents, err := os.ReadDir(d.Path)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		if ValidID(id) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Stat fingerprints a tenant's artifact as size plus mtime. Writers must
// replace artifacts atomically (write a temp file, then rename) for the
// fingerprint to be trustworthy.
func (d Dir) Stat(id string) (string, error) {
	p, err := d.File(id)
	if err != nil {
		return "", err
	}
	fi, err := os.Stat(p)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%d-%d", fi.Size(), fi.ModTime().UnixNano()), nil
}
