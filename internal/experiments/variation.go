package experiments

import (
	"fmt"

	"voltsense/internal/core"
	"voltsense/internal/detect"
	"voltsense/internal/mat"
	"voltsense/internal/ols"
)

// VariationResult is the deployment-robustness study: the model is trained
// on the nominal die's simulation, then monitors a die whose grid came back
// from fabrication with lognormal resistance variation.
type VariationResult struct {
	SegRSigma      float64
	SensorsPerCore int

	// Nominal die (the paper's setting).
	NominalRelErr float64
	NominalRates  detect.Rates

	// Varied die, nominal-trained model (deploy without recalibration).
	VariedRelErr float64
	VariedRates  detect.Rates

	// Varied die, coefficients refit on varied-die data with the SAME
	// sensor locations (post-silicon recalibration).
	RecalRelErr float64
	RecalRates  detect.Rates
}

// AblationProcessVariation evaluates what fabrication variation does to a
// design-time model: sensor placement and OLS coefficients come from the
// nominal pipeline; the test (and recalibration training) data come from a
// second grid whose segment and pad resistances vary lognormally with the
// given sigma.
func (p *Pipeline) AblationProcessVariation(q int, sigma float64) (*VariationResult, error) {
	if sigma <= 0 {
		return nil, fmt.Errorf("experiments: variation sigma %v must be positive", sigma)
	}
	_, union, err := p.ChipPlacementCount(q)
	if err != nil {
		return nil, err
	}
	pred, err := p.BuildChipPredictor(union)
	if err != nil {
		return nil, err
	}

	// The varied die: identical geometry (so candidate/critical node
	// indices transfer), perturbed electricals.
	cfg := p.Cfg
	cfg.Grid.SegRSigma = sigma
	cfg.Grid.PadRSigma = sigma / 2
	cfg.Grid.VariationSeed = p.Cfg.Seed + 77
	varied, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: building varied die: %w", err)
	}
	// Keep the NOMINAL critical nodes: the monitoring targets were chosen
	// at design time and do not move with fabrication.
	variedTest := p.resampleOnNodes(varied, p.CritNodes)

	out := &VariationResult{SegRSigma: sigma, SensorsPerCore: q}

	nomTest := p.TestAll()
	out.NominalRelErr = p.RelErrorOn(pred, nomTest)
	out.NominalRates = scoreSet(pred, nomTest, p.Cfg.Vth)

	out.VariedRelErr = ols.RelativeError(pred.PredictDataset(
		&core.Dataset{X: variedTest.CandV, F: variedTest.CritV}), variedTest.CritV)
	out.VariedRates = scoreSet(pred, variedTest, p.Cfg.Vth)

	// Recalibration: same sensors, coefficients refit on the varied die's
	// training run (which post-silicon bring-up would measure).
	variedTrain := p.resampleTrainOnNodes(varied, p.CritNodes)
	recal, err := core.BuildPredictor(&core.Dataset{X: variedTrain.CandV, F: variedTrain.CritV}, union)
	if err != nil {
		return nil, fmt.Errorf("experiments: recalibration: %w", err)
	}
	out.RecalRelErr = ols.RelativeError(recal.PredictDataset(
		&core.Dataset{X: variedTest.CandV, F: variedTest.CritV}), variedTest.CritV)
	out.RecalRates = scoreSet(recal, variedTest, p.Cfg.Vth)
	return out, nil
}

// resampleOnNodes re-extracts the varied pipeline's pooled test set with the
// nominal critical nodes (the varied pipeline recorded its own worst-droop
// nodes, which post-fabrication monitoring cannot know).
func (p *Pipeline) resampleOnNodes(varied *Pipeline, critNodes []int) *SampleSet {
	// The varied pipeline's recorded CritV used varied.CritNodes; rebuild
	// the rows by re-simulating is expensive, so instead exploit that the
	// candidate geometry is identical and re-record via a dedicated run.
	m := len(varied.Grid.Candidates)
	k := len(critNodes)
	total := 0
	for _, s := range varied.TestByBench {
		total += s.N()
	}
	cand := mat.Zeros(m, total)
	crit := mat.Zeros(k, total)
	bench := make([]int, 0, total)
	col := 0
	for bi, b := range varied.Bench {
		steps := varied.Cfg.TestSteps * varied.Cfg.TestStride
		recorded := 0
		_ = varied.simulate(b, runTest, steps, func(t int, v []float64) {
			if t%varied.Cfg.TestStride != 0 || recorded >= varied.Cfg.TestSteps {
				return
			}
			for i, nd := range varied.Grid.Candidates {
				cand.Set(i, col, v[nd])
			}
			for i, nd := range critNodes {
				crit.Set(i, col, v[nd])
			}
			bench = append(bench, bi)
			col++
			recorded++
		})
	}
	return &SampleSet{CandV: cand, CritV: crit, Bench: bench}
}

// resampleTrainOnNodes records a varied-die training set (run index
// runCalib reused as an independent stream) on the nominal critical nodes.
func (p *Pipeline) resampleTrainOnNodes(varied *Pipeline, critNodes []int) *SampleSet {
	m := len(varied.Grid.Candidates)
	k := len(critNodes)
	perBench := varied.Cfg.TrainMaps / len(varied.Bench)
	if perBench > varied.Cfg.TrainSteps {
		perBench = varied.Cfg.TrainSteps
	}
	total := perBench * len(varied.Bench)
	cand := mat.Zeros(m, total)
	crit := mat.Zeros(k, total)
	bench := make([]int, 0, total)
	col := 0
	for bi, b := range varied.Bench {
		recorded := 0
		_ = varied.simulate(b, runTrain, varied.Cfg.TrainSteps, func(t int, v []float64) {
			if recorded >= perBench {
				return
			}
			// Deterministic stride keeps coverage across the run.
			if t%(varied.Cfg.TrainSteps/perBench) != 0 {
				return
			}
			for i, nd := range varied.Grid.Candidates {
				cand.Set(i, col, v[nd])
			}
			for i, nd := range critNodes {
				crit.Set(i, col, v[nd])
			}
			bench = append(bench, bi)
			col++
			recorded++
		})
	}
	if col < total {
		cols := make([]int, col)
		for i := range cols {
			cols[i] = i
		}
		cand = cand.SelectCols(cols)
		crit = crit.SelectCols(cols)
	}
	return &SampleSet{CandV: cand, CritV: crit, Bench: bench}
}

func scoreSet(pred *core.Predictor, s *SampleSet, vth float64) detect.Rates {
	truth := detect.TruthFromVoltages(s.CritV, vth)
	predicted := pred.PredictDataset(&core.Dataset{X: s.CandV, F: s.CritV})
	return detect.Score(truth, detect.AlarmsFromPredictions(predicted, vth))
}
