package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"voltsense/internal/core"
	"voltsense/internal/floorplan"
	"voltsense/internal/grid"
	"voltsense/internal/mat"
	"voltsense/internal/pdn"
	"voltsense/internal/power"
	"voltsense/internal/thermal"
	"voltsense/internal/uarch"
	"voltsense/internal/workload"
)

// Run indices keep the pseudo-random workload streams of the pipeline's
// phases disjoint: a model must never be evaluated on the run it was trained
// on.
const (
	runTrain = 0
	runTest  = 1
	runCalib = 2
	runTrace = 3
)

// SampleSet holds voltage maps restricted to the rows the methodology needs:
// every blank-area candidate and every block's critical node.
type SampleSet struct {
	CandV *mat.Matrix // M-by-N candidate-node voltages
	CritV *mat.Matrix // K-by-N critical-node voltages
	Bench []int       // benchmark index of each sample column
}

// N returns the sample count.
func (s *SampleSet) N() int { return s.CandV.Cols() }

// Pipeline is a fully built experimental substrate. Build one with New and
// reuse it across experiments: all results derive deterministically from the
// Config.
type Pipeline struct {
	Cfg   Config
	Chip  *floorplan.Chip
	Grid  *grid.Grid
	Power *power.Model
	Bench []workload.Benchmark

	// CritNodes[b] is the grid node chosen as block b's noise-critical node
	// (the worst-droop node of the block during the calibration scan).
	CritNodes []int

	Train       *SampleSet   // pooled training maps across all benchmarks
	TestByBench []*SampleSet // held-out maps, one set per benchmark

	placeMu    sync.Mutex // guards placeCache and pathState map structure
	placeCache map[placeKey]*CorePlacement
	pathState  map[int]*corePathState // per-core warm-started path solvers

	// simPool recycles transient simulators across benchmark runs: the
	// banded Cholesky factorization in NewSimulator dominates short runs,
	// and Run re-settles all state, so reuse is exact.
	simPool sync.Pool

	thermalOnce sync.Once
	thermalM    *thermal.Model
	thermalErr  error
}

// New builds the pipeline: calibration scan, training runs, and test runs.
func New(cfg Config) (*Pipeline, error) {
	chip := floorplan.New(cfg.Chip)
	grd := grid.Build(chip, cfg.Grid)
	pm := power.DefaultModel(chip)
	p := &Pipeline{
		Cfg:        cfg,
		Chip:       chip,
		Grid:       grd,
		Power:      pm,
		Bench:      workload.Benchmarks(),
		placeCache: make(map[placeKey]*CorePlacement),
		pathState:  make(map[int]*corePathState),
	}
	if err := p.calibrateCriticalNodes(); err != nil {
		return nil, err
	}
	if err := p.collectTraining(); err != nil {
		return nil, err
	}
	if err := p.collectTest(); err != nil {
		return nil, err
	}
	return p, nil
}

// generateTrace produces the activity trace from the configured source.
func (p *Pipeline) generateTrace(bench workload.Benchmark, steps, run int) *workload.Trace {
	switch p.Cfg.TraceSource {
	case TraceUarch:
		return &uarch.Generate(p.Chip, bench, steps, run).Trace
	default:
		return workload.Generate(p.Chip, bench, steps, run)
	}
}

// leakScaleFor runs the thermal fixed point on the trace's average power
// and returns the per-block leakage multipliers, or nil when the feedback
// is disabled.
func (p *Pipeline) leakScaleFor(tr *workload.Trace) ([]float64, error) {
	if !p.Cfg.ThermalFeedback {
		return nil, nil
	}
	th, err := p.thermalModel()
	if err != nil {
		return nil, err
	}
	nb := p.Chip.NumBlocks()
	dyn := make([]float64, nb)
	leak := make([]float64, nb)
	for b := 0; b < nb; b++ {
		var act, powered float64
		for t := 0; t < tr.Steps; t++ {
			act += tr.Activity[b][t]
			if !tr.Gated[b][t] {
				powered++
			}
		}
		n := float64(tr.Steps)
		dyn[b] = act / n * p.Power.Dynamic[b]
		leak[b] = powered / n * p.Power.Leakage[b]
	}
	_, scale, _ := th.Couple(dyn, leak, thermalRefTemp, 12)
	return scale, nil
}

// thermalRefTemp is the temperature at which power.Model's leakage numbers
// are quoted.
const thermalRefTemp = 70

func (p *Pipeline) thermalModel() (*thermal.Model, error) {
	p.thermalOnce.Do(func() {
		p.thermalM, p.thermalErr = thermal.New(p.Chip, thermal.DefaultConfig())
	})
	return p.thermalM, p.thermalErr
}

// simulate runs one benchmark for warmup+steps and invokes onStep for every
// post-warmup step with the node voltages.
func (p *Pipeline) simulate(bench workload.Benchmark, run, steps int, onStep func(t int, v []float64)) error {
	total := p.Cfg.Warmup + steps
	tr := p.generateTrace(bench, total, run)
	scale, err := p.leakScaleFor(tr)
	if err != nil {
		return fmt.Errorf("experiments: %s: %w", bench.Name, err)
	}
	ct := p.Power.CurrentsScaledLeakage(tr, scale)
	sim, err := p.acquireSim()
	if err != nil {
		return fmt.Errorf("experiments: %s: %w", bench.Name, err)
	}
	defer p.simPool.Put(sim)
	cur := make([]float64, p.Chip.NumBlocks())
	err = sim.Run(total, func(t int) []float64 {
		for b := range cur {
			cur[b] = ct.Currents[b][t]
		}
		return cur
	}, func(t int, v []float64) {
		if t >= p.Cfg.Warmup {
			onStep(t-p.Cfg.Warmup, v)
		}
	})
	if err != nil {
		return fmt.Errorf("experiments: %s: %w", bench.Name, err)
	}
	return nil
}

// workers returns the configured outer-loop parallelism: Config.Workers, or
// GOMAXPROCS when unset.
func (p *Pipeline) workers() int {
	if p.Cfg.Workers > 0 {
		return p.Cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// simOpts maps the Config's solver knobs onto pdn.SimOptions.
func (p *Pipeline) simOpts() pdn.SimOptions {
	return pdn.SimOptions{
		Backend: p.Cfg.Backend,
		Precond: p.Cfg.Precond,
		Workers: p.Cfg.SparseWorkers,
	}
}

// useBatch resolves Config.BatchTraces: batch on explicit request, and under
// BatchAuto exactly when the backend resolves to Sparse — the multi-RHS PCG
// amortizes matrix and factor streaming there, while banded triangular
// sweeps gain nothing over the per-benchmark simulator pool.
func (p *Pipeline) useBatch() bool {
	switch p.Cfg.BatchTraces {
	case BatchOn:
		return true
	case BatchOff:
		return false
	}
	return pdn.ResolveBackend(p.Grid, p.Cfg.Backend) == pdn.Sparse
}

// acquireSim takes a transient simulator from the pool, building (and
// factoring) a fresh one only when the pool is empty. Return it with
// simPool.Put when the run completes.
func (p *Pipeline) acquireSim() (*pdn.Simulator, error) {
	if s, ok := p.simPool.Get().(*pdn.Simulator); ok {
		return s, nil
	}
	return pdn.NewSimulatorOpts(p.Grid, p.Cfg.DT, p.simOpts())
}

// simulateAll advances every benchmark's run in lock step through one shared
// multi-RHS BatchSimulator, invoking onStep(bi, t, v) for each post-warmup
// step of benchmark bi. Voltages are bitwise identical to per-benchmark
// simulate calls with the same options; callbacks arrive interleaved across
// benchmarks (ascending bi within each step).
func (p *Pipeline) simulateAll(run, steps int, onStep func(bi, t int, v []float64)) error {
	total := p.Cfg.Warmup + steps
	cts := make([]*power.CurrentTrace, len(p.Bench))
	err := p.forEachBenchmark(func(bi int, b workload.Benchmark) error {
		tr := p.generateTrace(b, total, run)
		scale, err := p.leakScaleFor(tr)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", b.Name, err)
		}
		cts[bi] = p.Power.CurrentsScaledLeakage(tr, scale)
		return nil
	})
	if err != nil {
		return err
	}
	bs, err := pdn.NewBatchSimulator(p.Grid, p.Cfg.DT, len(p.Bench), p.simOpts())
	if err != nil {
		return fmt.Errorf("experiments: batch simulator: %w", err)
	}
	cur := make([][]float64, len(p.Bench))
	for c := range cur {
		cur[c] = make([]float64, p.Chip.NumBlocks())
	}
	err = bs.RunAll(total, func(c, t int) []float64 {
		buf := cur[c]
		for b := range buf {
			buf[b] = cts[c].Currents[b][t]
		}
		return buf
	}, func(c, t int, v []float64) {
		if t >= p.Cfg.Warmup {
			onStep(c, t-p.Cfg.Warmup, v)
		}
	})
	if err != nil {
		return fmt.Errorf("experiments: batch run: %w", err)
	}
	return nil
}

// runBenchmarks delivers every benchmark's run-`run` post-warmup voltages to
// onStep(bi, t, v), either batched through one lock-stepped multi-RHS
// simulator or fanned across pooled per-benchmark simulators, per
// Config.BatchTraces. Callbacks for different benchmarks may arrive
// interleaved (batched) or concurrently (fan-out), so collectors must write
// only to benchmark-indexed slots; within one benchmark, t is ascending
// either way.
func (p *Pipeline) runBenchmarks(run, steps int, onStep func(bi, t int, v []float64)) error {
	if p.useBatch() {
		return p.simulateAll(run, steps, onStep)
	}
	return p.forEachBenchmark(func(bi int, b workload.Benchmark) error {
		return p.simulate(b, run, steps, func(t int, v []float64) { onStep(bi, t, v) })
	})
}

// forEachBenchmark runs fn(bi, bench) for every benchmark concurrently on
// the mat worker pool, bounded by Config.Workers (default: GOMAXPROCS).
// Benchmarks are mutually independent — each fn gets its own pooled
// simulator — and every result lands in a benchmark-indexed slot, so output
// is identical to the sequential order regardless of scheduling. The first
// error (by benchmark index) wins.
func (p *Pipeline) forEachBenchmark(fn func(bi int, b workload.Benchmark) error) error {
	errs := make([]error, len(p.Bench))
	mat.ParallelFor(len(p.Bench), 1, p.workers(), func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			errs[bi] = fn(bi, p.Bench[bi])
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// calibrateCriticalNodes picks, for every block, the mesh node with the
// worst droop over a short scan of every benchmark (the paper's "worst noise
// during a sampling simulation period").
func (p *Pipeline) calibrateCriticalNodes() error {
	droops := make([]*pdn.WorstDroop, len(p.Bench))
	for bi := range droops {
		droops[bi] = pdn.NewWorstDroop(p.Grid.NumNodes())
	}
	err := p.runBenchmarks(runCalib, p.Cfg.CalibSteps, func(bi, _ int, v []float64) {
		droops[bi].Observe(v)
	})
	if err != nil {
		return err
	}
	merged := pdn.NewWorstDroop(p.Grid.NumNodes())
	for _, d := range droops {
		merged.Observe(d.Min)
	}
	p.CritNodes = make([]int, p.Chip.NumBlocks())
	for b, nodes := range p.Grid.BlockNodes {
		p.CritNodes[b] = merged.CriticalNode(nodes)
	}
	return nil
}

// collectTraining simulates the training run of every benchmark and records
// the pre-selected random sample steps, pooling them into Train.
func (p *Pipeline) collectTraining() error {
	rng := rand.New(rand.NewSource(p.Cfg.Seed))
	nb := len(p.Bench)
	perBench := p.Cfg.TrainMaps / nb
	if perBench < 1 {
		return fmt.Errorf("experiments: TrainMaps %d too small for %d benchmarks", p.Cfg.TrainMaps, nb)
	}
	if perBench > p.Cfg.TrainSteps {
		return fmt.Errorf("experiments: need %d maps/benchmark but only %d training steps", perBench, p.Cfg.TrainSteps)
	}
	total := perBench * nb
	m := len(p.Grid.Candidates)
	k := p.Chip.NumBlocks()
	cand := mat.Zeros(m, total)
	crit := mat.Zeros(k, total)
	benchIdx := make([]int, total)

	// Draw every benchmark's sampled steps up front (sequentially, so the
	// RNG stream — and therefore the dataset — is identical regardless of
	// worker count), assigning each benchmark a disjoint column range.
	picks := make([]map[int]int, len(p.Bench)) // step -> column
	col := 0
	for bi := range p.Bench {
		steps := rng.Perm(p.Cfg.TrainSteps)[:perBench]
		sort.Ints(steps)
		pick := make(map[int]int, perBench)
		for _, s := range steps {
			pick[s] = col
			benchIdx[col] = bi
			col++
		}
		picks[bi] = pick
	}
	err := p.runBenchmarks(runTrain, p.Cfg.TrainSteps, func(bi, t int, v []float64) {
		c, ok := picks[bi][t]
		if !ok {
			return
		}
		p.recordColumn(cand, crit, c, v)
	})
	if err != nil {
		return err
	}
	p.Train = &SampleSet{CandV: cand, CritV: crit, Bench: benchIdx}
	return nil
}

// collectTest records TestSteps strided maps per benchmark from the held-out
// run.
func (p *Pipeline) collectTest() error {
	m := len(p.Grid.Candidates)
	k := p.Chip.NumBlocks()
	p.TestByBench = make([]*SampleSet, len(p.Bench))
	cols := make([]int, len(p.Bench))
	for bi := range p.Bench {
		benchIdx := make([]int, p.Cfg.TestSteps)
		for i := range benchIdx {
			benchIdx[i] = bi
		}
		p.TestByBench[bi] = &SampleSet{
			CandV: mat.Zeros(m, p.Cfg.TestSteps),
			CritV: mat.Zeros(k, p.Cfg.TestSteps),
			Bench: benchIdx,
		}
	}
	steps := p.Cfg.TestSteps * p.Cfg.TestStride
	return p.runBenchmarks(runTest, steps, func(bi, t int, v []float64) {
		if t%p.Cfg.TestStride != 0 || cols[bi] >= p.Cfg.TestSteps {
			return
		}
		s := p.TestByBench[bi]
		p.recordColumn(s.CandV, s.CritV, cols[bi], v)
		cols[bi]++
	})
}

// recordColumn copies the candidate and critical rows of one voltage map
// into column c.
func (p *Pipeline) recordColumn(cand, crit *mat.Matrix, c int, v []float64) {
	for i, nd := range p.Grid.Candidates {
		cand.Set(i, c, v[nd])
	}
	for b, nd := range p.CritNodes {
		crit.Set(b, c, v[nd])
	}
}

// TestAll concatenates the per-benchmark test sets into one pooled set.
func (p *Pipeline) TestAll() *SampleSet {
	total := 0
	for _, s := range p.TestByBench {
		total += s.N()
	}
	m := len(p.Grid.Candidates)
	k := p.Chip.NumBlocks()
	cand := mat.Zeros(m, total)
	crit := mat.Zeros(k, total)
	bench := make([]int, 0, total)
	col := 0
	for _, s := range p.TestByBench {
		// Concatenate row segments with bulk copies instead of element-wise
		// At/Set: each source row is a contiguous slice landing at column
		// offset col of the pooled row.
		w := s.N()
		for i := 0; i < m; i++ {
			copy(cand.Row(i)[col:col+w], s.CandV.Row(i))
		}
		for i := 0; i < k; i++ {
			copy(crit.Row(i)[col:col+w], s.CritV.Row(i))
		}
		bench = append(bench, s.Bench...)
		col += w
	}
	return &SampleSet{CandV: cand, CritV: crit, Bench: bench}
}

// CoreBlocks returns the block IDs of core c, ascending.
func (p *Pipeline) CoreBlocks(c int) []int {
	out := make([]int, 0, floorplan.BlocksPerCore)
	for _, b := range p.Chip.Cores[c].Blocks {
		out = append(out, b.ID)
	}
	sort.Ints(out)
	return out
}

// CoreDataset restricts a sample set to one core: X = the core's candidate
// rows, F = the core's block rows. It returns the dataset plus the global
// candidate indices of its X rows.
func (p *Pipeline) CoreDataset(c int, s *SampleSet) (*core.Dataset, []int) {
	candIdx := p.Grid.CandidatesInCore(c)
	ds := &core.Dataset{
		X: s.CandV.SelectRows(candIdx),
		F: s.CritV.SelectRows(p.CoreBlocks(c)),
	}
	return ds, candIdx
}

// glTrainDataset caps the number of samples fed to the group-lasso solver;
// training columns are already randomly ordered across each benchmark, and
// the cap takes a benchmark-balanced stride so every workload stays
// represented.
func (p *Pipeline) glTrainDataset(c int) (*core.Dataset, []int) {
	ds, candIdx := p.CoreDataset(c, p.Train)
	return p.capSamples(ds), candIdx
}

// capSamples applies the GLSampleCap benchmark-balanced stride to a training
// dataset (columns are already randomly ordered within each benchmark).
func (p *Pipeline) capSamples(ds *core.Dataset) *core.Dataset {
	cap := p.Cfg.GLSampleCap
	if cap <= 0 || ds.X.Cols() <= cap {
		return ds
	}
	stride := ds.X.Cols() / cap
	cols := make([]int, 0, cap)
	for j := 0; j < ds.X.Cols() && len(cols) < cap; j += stride {
		cols = append(cols, j)
	}
	return ds.Subset(cols)
}

// ClearPlacementCache drops memoized per-core placements and warm-started
// path solvers, forcing the next experiment to re-run the solvers (used by
// benchmarks to measure real work).
func (p *Pipeline) ClearPlacementCache() {
	p.placeMu.Lock()
	p.placeCache = make(map[placeKey]*CorePlacement)
	p.pathState = make(map[int]*corePathState)
	p.placeMu.Unlock()
}

// BusiestBenchmark returns the index of the benchmark whose held-out run
// contains the most emergency samples — a sensible default subject for the
// Figure 4 sweep (the paper's "BM4" is anonymized; any emergency-rich
// benchmark shows the crossover).
func (p *Pipeline) BusiestBenchmark() int {
	best, bestFrac := 0, -1.0
	for bi, s := range p.TestByBench {
		if f := p.EmergencyFraction(s); f > bestFrac {
			best, bestFrac = bi, f
		}
	}
	return best
}

// EmergencyFraction reports the fraction of samples in s with at least one
// critical node below Vth — the base rate the detection experiments work
// against.
func (p *Pipeline) EmergencyFraction(s *SampleSet) float64 {
	n := s.N()
	if n == 0 {
		return 0
	}
	cnt := 0
	for j := 0; j < n; j++ {
		for i := 0; i < s.CritV.Rows(); i++ {
			if s.CritV.At(i, j) < p.Cfg.Vth {
				cnt++
				break
			}
		}
	}
	return float64(cnt) / float64(n)
}
