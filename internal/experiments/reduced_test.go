package experiments

import (
	"math"
	"testing"

	"voltsense/internal/basis"
)

// TestRankStudy runs the chip-joint rank/accuracy trade-off end to end on
// the tiny pipeline and checks the properties the PR's acceptance criteria
// lean on: the 99%-energy basis compresses K hard, its selection agrees
// with the dense solve, and its held-out accuracy stays within tolerance.
func TestRankStudy(t *testing.T) {
	p, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.RankStudy(12, []float64{0.99, 0.999})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 3 {
		t.Fatalf("got %d rows, want dense + 2 energy levels", len(d.Rows))
	}
	dense := d.Rows[0]
	if dense.Label != "dense" || dense.Rank != d.Targets {
		t.Fatalf("first row is %q rank %d, want dense at full rank %d", dense.Label, dense.Rank, d.Targets)
	}
	if dense.Sensors == 0 || dense.RelErr <= 0 || math.IsNaN(dense.RelErr) {
		t.Fatalf("degenerate dense row: %+v", dense)
	}
	for _, row := range d.Rows[1:] {
		if row.Rank >= d.Targets/4 {
			t.Fatalf("%s basis barely compresses: rank %d of %d", row.Label, row.Rank, d.Targets)
		}
		if row.Energy < 0.99 {
			t.Fatalf("%s captured %g energy, below its target", row.Label, row.Energy)
		}
		// The reduced placement competes for the same sensor budget…
		if diff := row.Sensors - dense.Sensors; diff > 2 || diff < -2 {
			t.Fatalf("%s selected %d sensors vs dense %d", row.Label, row.Sensors, dense.Sensors)
		}
		// …and its held-out accuracy must not collapse: the acceptance bar
		// is TE within 5 points of dense, and the truncation cost in
		// relative error stays a few percent (the EXPERIMENTS.md table
		// records the exact numbers).
		if row.TE.TE > dense.TE.TE+0.05 {
			t.Fatalf("%s TE %g vs dense %g", row.Label, row.TE.TE, dense.TE.TE)
		}
		if row.RelErr > dense.RelErr+0.03 {
			t.Fatalf("%s rel err %g vs dense %g", row.Label, row.RelErr, dense.RelErr)
		}
		// The dense-refit columns isolate selection quality: whatever the
		// rank-r refit costs, the sensors the reduced solve picked must
		// support near-dense accuracy when refit against all K nodes.
		if row.TEDense.TE > dense.TE.TE+0.05 {
			t.Fatalf("%s dense-refit TE %g vs dense %g", row.Label, row.TEDense.TE, dense.TE.TE)
		}
		if row.RelErrDense > dense.RelErr+0.01 {
			t.Fatalf("%s dense-refit rel err %g vs dense %g", row.Label, row.RelErrDense, dense.RelErr)
		}
	}
}

// TestChipPlacementReducedMatchesDenseSelection pins the headline
// equivalence on real pipeline data (not just synthetic): at 99% energy the
// reduced chip-joint selection tracks the dense one.
func TestChipPlacementReducedMatchesDenseSelection(t *testing.T) {
	p, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	dense, err := p.PlaceChipDense(8)
	if err != nil {
		t.Fatal(err)
	}
	red, err := p.PlaceChipReduced(8, basis.Config{Energy: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	in := map[int]bool{}
	for _, s := range dense.Selected {
		in[s] = true
	}
	overlap := 0
	for _, s := range red.Selected {
		if in[s] {
			overlap++
		}
	}
	if len(dense.Selected) == 0 || overlap < len(dense.Selected)-1 {
		t.Fatalf("reduced selection %v overlaps dense %v in only %d places",
			red.Selected, dense.Selected, overlap)
	}
}
