package experiments

import (
	"errors"
	"fmt"
	"sort"

	"voltsense/internal/core"
	"voltsense/internal/lasso"
	"voltsense/internal/mat"
	"voltsense/internal/ols"
)

// CorePlacement is a per-core sensor selection with both local (dataset-row)
// and global (grid-candidate) indexing.
type CorePlacement struct {
	Core       int
	Lambda     float64   // λ used (0 when found via count targeting)
	LocalIdx   []int     // selected rows of the core dataset
	CandIdx    []int     // same sensors as indices into grid.Candidates
	GroupNorms []float64 // per core-candidate ‖β_m‖₂
}

// PlaceCore runs the paper's group-lasso selection on core c's candidates at
// budget lambda. Results are cached per (core, λ).
func (p *Pipeline) PlaceCore(c int, lambda float64) (*CorePlacement, error) {
	key := fmt.Sprintf("c%d-l%g", c, lambda)
	if pl, ok := p.placeCache[key]; ok {
		return pl, nil
	}
	ds, candIdx := p.glTrainDataset(c)
	pl, err := core.PlaceSensors(ds, core.Config{
		Lambda:    lambda,
		Threshold: p.Cfg.Threshold,
		Solver:    p.Cfg.Solver,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: core %d λ=%v: %w", c, lambda, err)
	}
	out := &CorePlacement{
		Core:       c,
		Lambda:     lambda,
		LocalIdx:   pl.Selected,
		CandIdx:    mapIdx(candIdx, pl.Selected),
		GroupNorms: pl.GroupNorms,
	}
	p.placeCache[key] = out
	return out, nil
}

// PlaceCoreCount finds a per-core placement with exactly q sensors by
// bisecting the penalized group-lasso multiplier μ (sensor count is
// monotone in μ) and trimming to the top-q group norms when the count
// cannot land exactly. Results are cached per (core, q).
func (p *Pipeline) PlaceCoreCount(c, q int) (*CorePlacement, error) {
	key := fmt.Sprintf("c%d-q%d", c, q)
	if pl, ok := p.placeCache[key]; ok {
		return pl, nil
	}
	if q < 1 {
		return nil, fmt.Errorf("experiments: sensor count %d must be positive", q)
	}
	ds, candIdx := p.glTrainDataset(c)
	if q > ds.X.Rows() {
		return nil, fmt.Errorf("experiments: core %d has %d candidates, cannot place %d", c, ds.X.Rows(), q)
	}
	z, _ := mat.Standardize(ds.X)
	g, _ := mat.Standardize(ds.F)

	// μ upper bound: the smallest μ that zeroes everything.
	muMax := 0.0
	k := g.Rows()
	u := make([]float64, k)
	for j := 0; j < z.Rows(); j++ {
		zj := z.Row(j)
		for i := 0; i < k; i++ {
			u[i] = mat.Dot(g.Row(i), zj)
		}
		if n := mat.Norm2(u); n > muMax {
			muMax = n
		}
	}
	count := func(r *lasso.Result) int { return len(r.Select(p.Cfg.Threshold)) }

	// Selection only needs the support, not a fully polished optimum, so a
	// bisection step that runs out of iterations is still usable.
	opts := p.Cfg.Solver
	if opts.MaxIter < 3000 {
		opts.MaxIter = 3000
	}
	lo, hi := 0.0, muMax // count(lo) = max, count(hi) = 0
	var best *lasso.Result
	bestCount := -1
	for it := 0; it < 40; it++ {
		mu := (lo + hi) / 2
		r, err := lasso.SolvePenalized(z, g, mu, opts)
		if err != nil && !errors.Is(err, lasso.ErrDidNotConverge) {
			return nil, fmt.Errorf("experiments: core %d q=%d: %w", c, q, err)
		}
		n := count(r)
		// Track the tightest solution with at least q sensors.
		if n >= q && (bestCount < 0 || n < bestCount) {
			best, bestCount = r, n
		}
		if n == q {
			break
		}
		if n > q {
			lo = mu
		} else {
			hi = mu
		}
	}
	if best == nil {
		return nil, fmt.Errorf("experiments: core %d: could not reach %d sensors", c, q)
	}
	sel := best.Select(p.Cfg.Threshold)
	if len(sel) > q {
		// Keep the q strongest groups.
		sort.Slice(sel, func(a, b int) bool {
			return best.GroupNorms[sel[a]] > best.GroupNorms[sel[b]]
		})
		sel = sel[:q]
		sort.Ints(sel)
	}
	out := &CorePlacement{
		Core:       c,
		LocalIdx:   sel,
		CandIdx:    mapIdx(candIdx, sel),
		GroupNorms: best.GroupNorms,
	}
	p.placeCache[key] = out
	return out, nil
}

// ChipPlacementCount places q sensors in every core and returns the
// per-core placements plus the union of global candidate indices.
func (p *Pipeline) ChipPlacementCount(q int) ([]*CorePlacement, []int, error) {
	var all []*CorePlacement
	var union []int
	for c := range p.Chip.Cores {
		pl, err := p.PlaceCoreCount(c, q)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, pl)
		union = append(union, pl.CandIdx...)
	}
	sort.Ints(union)
	return all, union, nil
}

// ChipPlacementLambda places sensors in every core at budget λ and returns
// the per-core placements plus the union of global candidate indices.
func (p *Pipeline) ChipPlacementLambda(lambda float64) ([]*CorePlacement, []int, error) {
	var all []*CorePlacement
	var union []int
	for c := range p.Chip.Cores {
		pl, err := p.PlaceCore(c, lambda)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, pl)
		union = append(union, pl.CandIdx...)
	}
	sort.Ints(union)
	return all, union, nil
}

// BuildChipPredictor refits the unbiased OLS model from the chosen sensors
// (global candidate indices) to every critical node, on the full training
// set.
func (p *Pipeline) BuildChipPredictor(sensors []int) (*core.Predictor, error) {
	ds := &core.Dataset{X: p.Train.CandV, F: p.Train.CritV}
	return core.BuildPredictor(ds, sensors)
}

// PredictTest evaluates a chip predictor over a sample set, returning the
// K-by-N predicted critical-node voltages.
func (p *Pipeline) PredictTest(pred *core.Predictor, s *SampleSet) *mat.Matrix {
	return pred.PredictDataset(&core.Dataset{X: s.CandV, F: s.CritV})
}

// RelErrorOn computes the aggregated relative prediction error of a chip
// predictor over a sample set.
func (p *Pipeline) RelErrorOn(pred *core.Predictor, s *SampleSet) float64 {
	return ols.RelativeError(p.PredictTest(pred, s), s.CritV)
}

func mapIdx(global, local []int) []int {
	out := make([]int, len(local))
	for i, l := range local {
		out[i] = global[l]
	}
	return out
}
