package experiments

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"voltsense/internal/core"
	"voltsense/internal/lasso"
	"voltsense/internal/mat"
	"voltsense/internal/ols"
)

// CorePlacement is a per-core sensor selection with both local (dataset-row)
// and global (grid-candidate) indexing.
type CorePlacement struct {
	Core       int
	Lambda     float64   // λ used (0 when found via count targeting)
	LocalIdx   []int     // selected rows of the core dataset
	CandIdx    []int     // same sensors as indices into grid.Candidates
	GroupNorms []float64 // per core-candidate ‖β_m‖₂
}

// placeKey identifies a memoized placement. Exactly one of lambda/count is
// meaningful, disambiguated by byCount — unlike the old formatted-string key,
// a λ entry can never collide with a count entry, and lookups build no
// garbage.
type placeKey struct {
	core    int
	byCount bool
	lambda  float64
	count   int
}

func lambdaKey(c int, l float64) placeKey { return placeKey{core: c, lambda: l} }
func countKey(c, q int) placeKey          { return placeKey{core: c, byCount: true, count: q} }

// corePathState is one core's warm-started path solver plus the dataset
// indexing it was built from. Its mutex serializes the solver (PathSolver is
// single-threaded state); the per-core granularity lets ChipPlacement* run
// all cores concurrently.
type corePathState struct {
	mu      sync.Mutex
	ps      *lasso.PathSolver
	candIdx []int
	m       int // candidate count for this core
}

// corePath returns core c's path state with its mutex HELD; the caller must
// unlock it. The solver is built lazily on first use: one dataset extraction,
// one standardization, one Gram for every λ and μ this core will ever see.
func (p *Pipeline) corePath(c int) *corePathState {
	p.placeMu.Lock()
	st, ok := p.pathState[c]
	if !ok {
		st = &corePathState{}
		p.pathState[c] = st
	}
	p.placeMu.Unlock()
	st.mu.Lock()
	if st.ps == nil {
		ds, candIdx := p.glTrainDataset(c)
		z, _ := mat.Standardize(ds.X)
		g, _ := mat.Standardize(ds.F)
		// Selection needs the support, not a polished optimum, and the count
		// bisection in particular tolerates hitting the iteration ceiling, so
		// give the shared solver the same headroom the old per-call bisection
		// used.
		opts := p.Cfg.Solver
		if opts.MaxIter < 3000 {
			opts.MaxIter = 3000
		}
		st.ps = lasso.NewPathSolver(z, g, opts)
		st.candIdx = candIdx
		st.m = ds.X.Rows()
	}
	return st
}

func (p *Pipeline) threshold() float64 {
	if p.Cfg.Threshold != 0 {
		return p.Cfg.Threshold
	}
	return core.DefaultThreshold
}

func (p *Pipeline) cachedPlacement(key placeKey) (*CorePlacement, bool) {
	p.placeMu.Lock()
	pl, ok := p.placeCache[key]
	p.placeMu.Unlock()
	return pl, ok
}

func (p *Pipeline) storePlacement(key placeKey, pl *CorePlacement) {
	p.placeMu.Lock()
	p.placeCache[key] = pl
	p.placeMu.Unlock()
}

// PlaceCore runs the paper's group-lasso selection on core c's candidates at
// budget lambda. Results are cached per (core, λ); concurrent callers are
// safe.
func (p *Pipeline) PlaceCore(c int, lambda float64) (*CorePlacement, error) {
	pls, err := p.PlaceCorePath(c, []float64{lambda})
	if err != nil {
		return nil, err
	}
	return pls[0], nil
}

// PlaceCorePath places core c's sensors at every budget in lambdas through
// one warm-started path solve (shared Gram, descending λ, screening),
// returning placements in input order. Cached points are reused; only the
// missing budgets are solved.
func (p *Pipeline) PlaceCorePath(c int, lambdas []float64) ([]*CorePlacement, error) {
	out := make([]*CorePlacement, len(lambdas))
	var missing []int
	for i, l := range lambdas {
		if pl, ok := p.cachedPlacement(lambdaKey(c, l)); ok {
			out[i] = pl
		} else {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return out, nil
	}
	st := p.corePath(c)
	defer st.mu.Unlock()
	// Dense → sparse keeps each warm start close to the next optimum.
	sort.SliceStable(missing, func(a, b int) bool {
		return lambdas[missing[a]] > lambdas[missing[b]]
	})
	thr := p.threshold()
	for _, i := range missing {
		l := lambdas[i]
		res, _, err := st.ps.SolveConstrained(l)
		if err != nil && !errors.Is(err, lasso.ErrDidNotConverge) {
			return nil, fmt.Errorf("experiments: core %d λ=%v: %w", c, l, err)
		}
		sel := res.Select(thr)
		pl := &CorePlacement{
			Core:       c,
			Lambda:     l,
			LocalIdx:   sel,
			CandIdx:    mapIdx(st.candIdx, sel),
			GroupNorms: res.GroupNorms,
		}
		p.storePlacement(lambdaKey(c, l), pl)
		out[i] = pl
	}
	return out, nil
}

// PlaceCoreCount finds a per-core placement with exactly q sensors by
// bisecting the penalized group-lasso multiplier μ (sensor count is monotone
// in μ) and trimming to the top-q group norms when the count cannot land
// exactly. Every bisection step reuses the core's path solver — one Gram for
// the whole search, each solve warm-started from the previous midpoint —
// and results are cached per (core, q).
func (p *Pipeline) PlaceCoreCount(c, q int) (*CorePlacement, error) {
	if pl, ok := p.cachedPlacement(countKey(c, q)); ok {
		return pl, nil
	}
	if q < 1 {
		return nil, fmt.Errorf("experiments: sensor count %d must be positive", q)
	}
	st := p.corePath(c)
	defer st.mu.Unlock()
	if q > st.m {
		return nil, fmt.Errorf("experiments: core %d has %d candidates, cannot place %d", c, st.m, q)
	}
	thr := p.threshold()
	count := func(r *lasso.Result) int { return len(r.Select(thr)) }

	lo, hi := 0.0, st.ps.MuMax() // count(lo) = max, count(hi) = 0
	var best *lasso.Result
	bestCount := -1
	for it := 0; it < 40; it++ {
		mu := (lo + hi) / 2
		r, _, err := st.ps.SolvePenalized(mu)
		if err != nil && !errors.Is(err, lasso.ErrDidNotConverge) {
			return nil, fmt.Errorf("experiments: core %d q=%d: %w", c, q, err)
		}
		n := count(r)
		// Track the tightest solution with at least q sensors.
		if n >= q && (bestCount < 0 || n < bestCount) {
			best, bestCount = r, n
		}
		if n == q {
			break
		}
		if n > q {
			lo = mu
		} else {
			hi = mu
		}
	}
	if best == nil {
		return nil, fmt.Errorf("experiments: core %d: could not reach %d sensors", c, q)
	}
	sel := best.Select(thr)
	if len(sel) > q {
		// Keep the q strongest groups.
		sort.Slice(sel, func(a, b int) bool {
			return best.GroupNorms[sel[a]] > best.GroupNorms[sel[b]]
		})
		sel = sel[:q]
		sort.Ints(sel)
	}
	out := &CorePlacement{
		Core:       c,
		LocalIdx:   sel,
		CandIdx:    mapIdx(st.candIdx, sel),
		GroupNorms: best.GroupNorms,
	}
	p.storePlacement(countKey(c, q), out)
	return out, nil
}

// forEachCore runs fn(c) for every core concurrently on the mat worker pool
// (bounded by Config.Workers), collecting per-core errors into an indexed
// slice so the first-error rule is deterministic. Each core's placement
// state has its own lock, so cores proceed independently; the nested lasso
// kernels degrade to serial when the pool is saturated.
func (p *Pipeline) forEachCore(fn func(c int) error) error {
	nc := len(p.Chip.Cores)
	errs := make([]error, nc)
	mat.ParallelFor(nc, 1, p.workers(), func(lo, hi int) {
		for c := lo; c < hi; c++ {
			errs[c] = fn(c)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// unionOf merges per-core global candidate selections, ascending.
func unionOf(placements []*CorePlacement) []int {
	var union []int
	for _, pl := range placements {
		union = append(union, pl.CandIdx...)
	}
	sort.Ints(union)
	return union
}

// ChipPlacementCount places q sensors in every core — cores solved
// concurrently — and returns the per-core placements (core order) plus the
// union of global candidate indices.
func (p *Pipeline) ChipPlacementCount(q int) ([]*CorePlacement, []int, error) {
	all := make([]*CorePlacement, len(p.Chip.Cores))
	err := p.forEachCore(func(c int) error {
		pl, err := p.PlaceCoreCount(c, q)
		all[c] = pl
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return all, unionOf(all), nil
}

// ChipPlacementLambda places sensors in every core at budget λ and returns
// the per-core placements plus the union of global candidate indices.
func (p *Pipeline) ChipPlacementLambda(lambda float64) ([]*CorePlacement, []int, error) {
	byLambda, err := p.ChipPlacementPath([]float64{lambda})
	if err != nil {
		return nil, nil, err
	}
	return byLambda[0], unionOf(byLambda[0]), nil
}

// ChipPlacementPath runs every core's full λ path — cores concurrent, each
// core's budgets warm-started off one shared Gram — and returns placements
// indexed [lambda][core], lambdas in input order. This is the Table 1 sweep
// engine: nLambdas × nCores selections for nCores Gram builds.
func (p *Pipeline) ChipPlacementPath(lambdas []float64) ([][]*CorePlacement, error) {
	nc := len(p.Chip.Cores)
	perCore := make([][]*CorePlacement, nc)
	err := p.forEachCore(func(c int) error {
		pls, err := p.PlaceCorePath(c, lambdas)
		perCore[c] = pls
		return err
	})
	if err != nil {
		return nil, err
	}
	byLambda := make([][]*CorePlacement, len(lambdas))
	for li := range lambdas {
		byLambda[li] = make([]*CorePlacement, nc)
		for c := 0; c < nc; c++ {
			byLambda[li][c] = perCore[c][li]
		}
	}
	return byLambda, nil
}

// BuildChipPredictor refits the unbiased OLS model from the chosen sensors
// (global candidate indices) to every critical node, on the full training
// set.
func (p *Pipeline) BuildChipPredictor(sensors []int) (*core.Predictor, error) {
	ds := &core.Dataset{X: p.Train.CandV, F: p.Train.CritV}
	return core.BuildPredictor(ds, sensors)
}

// PredictTest evaluates a chip predictor over a sample set, returning the
// K-by-N predicted critical-node voltages.
func (p *Pipeline) PredictTest(pred *core.Predictor, s *SampleSet) *mat.Matrix {
	return pred.PredictDataset(&core.Dataset{X: s.CandV, F: s.CritV})
}

// RelErrorOn computes the aggregated relative prediction error of a chip
// predictor over a sample set.
func (p *Pipeline) RelErrorOn(pred *core.Predictor, s *SampleSet) float64 {
	return ols.RelativeError(p.PredictTest(pred, s), s.CritV)
}

func mapIdx(global, local []int) []int {
	out := make([]int, len(local))
	for i, l := range local {
		out[i] = global[l]
	}
	return out
}
