package experiments

import (
	"math"
	"sync"
	"testing"

	"voltsense/internal/mat"
)

// The quick pipeline is expensive to build (~seconds), so every test in this
// package shares one instance.
var (
	quickOnce sync.Once
	quickPipe *Pipeline
	quickErr  error
)

func quick(t *testing.T) *Pipeline {
	t.Helper()
	quickOnce.Do(func() {
		quickPipe, quickErr = New(QuickConfig())
	})
	if quickErr != nil {
		t.Fatalf("building quick pipeline: %v", quickErr)
	}
	return quickPipe
}

// TestCalibrationDiagnostics prints the physical operating point; run with
// -v to inspect. The assertions pin the regime the detection experiments
// need: droops deep enough that emergencies occur, shallow enough that they
// are not constant.
func TestCalibrationDiagnostics(t *testing.T) {
	p := quick(t)

	// Voltage statistics over training critical nodes.
	crit := p.Train.CritV
	lo, hi := math.Inf(1), math.Inf(-1)
	var sum float64
	n := 0
	for i := 0; i < crit.Rows(); i++ {
		for _, v := range crit.Row(i) {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			sum += v
			n++
		}
	}
	t.Logf("critical-node voltages: min=%.4f mean=%.4f max=%.4f", lo, sum/float64(n), hi)

	trainFrac := p.EmergencyFraction(p.Train)
	testFrac := p.EmergencyFraction(p.TestAll())
	t.Logf("emergency fraction: train=%.3f test=%.3f (Vth=%.2f)", trainFrac, testFrac, p.Cfg.Vth)

	if trainFrac < 0.05 {
		t.Errorf("emergencies too rare (%.3f); droops too shallow for detection experiments", trainFrac)
	}
	if trainFrac > 0.80 {
		t.Errorf("emergencies near-constant (%.3f); droops too deep", trainFrac)
	}
	if lo < 0.5 {
		t.Errorf("min voltage %.3f implausibly deep", lo)
	}

	// Candidate (BA) nodes droop less than FA critical nodes on average —
	// the mismatch that motivates the paper.
	candMean := mat.Mean(mat.RowMeans(p.Train.CandV))
	critMean := sum / float64(n)
	t.Logf("mean candidate V = %.4f, mean critical V = %.4f", candMean, critMean)
	if candMean <= critMean {
		t.Errorf("blank area droops more than function area: cand=%.4f crit=%.4f", candMean, critMean)
	}
}

// TestCandidateCriticalCorrelation verifies the premise the methodology
// rests on: blank-area candidate voltages strongly correlate with nearby
// critical nodes.
func TestCandidateCriticalCorrelation(t *testing.T) {
	p := quick(t)
	// For core 0: best candidate correlation with each block's critical
	// node should be high.
	ds, _ := p.CoreDataset(0, p.Train)
	weak := 0
	for k := 0; k < ds.F.Rows(); k++ {
		fRow := ds.F.Row(k)
		best := 0.0
		for m := 0; m < ds.X.Rows(); m++ {
			if c := math.Abs(mat.Correlation(ds.X.Row(m), fRow)); c > best {
				best = c
			}
		}
		if best < 0.8 {
			weak++
		}
	}
	if weak > ds.F.Rows()/4 {
		t.Errorf("%d of %d blocks lack a well-correlated candidate", weak, ds.F.Rows())
	}
}
