package experiments

import (
	"strings"
	"testing"
)

func TestCorrelationProfileDecays(t *testing.T) {
	p := quick(t)
	prof, err := p.CorrelationProfile(1.0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", prof.Render())
	if len(prof.MeanCorr) < 5 {
		t.Fatalf("only %d bins", len(prof.MeanCorr))
	}
	// The first bin (nearest candidates) must dominate the farthest
	// populated bin — the locality premise.
	first := prof.MeanCorr[0]
	last := 0.0
	for i := len(prof.MeanCorr) - 1; i >= 0; i-- {
		if prof.Count[i] > 50 {
			last = prof.MeanCorr[i]
			break
		}
	}
	if first < 0.85 {
		t.Errorf("nearest-bin correlation %.3f too weak for the methodology's premise", first)
	}
	if first <= last {
		t.Errorf("no decay: first bin %.3f vs far bin %.3f", first, last)
	}
}

func TestCorrelationProfileBadBin(t *testing.T) {
	p := quick(t)
	if _, err := p.CorrelationProfile(0); err == nil {
		t.Fatal("expected error for zero bin width")
	}
}

func TestCorrelationProfileCSV(t *testing.T) {
	p := quick(t)
	prof, err := p.CorrelationProfile(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(prof.CSV(), "dist_lo_mm,") {
		t.Error("CSV header missing")
	}
}

func TestTable2PerBlock(t *testing.T) {
	p := quick(t)
	d, err := p.Table2PerBlock(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("chip-level: %v", d.ChipLevel)
	t.Logf("per-block : %v", d.PerBlock)
	if d.PerBlock.Samples != d.ChipLevel.Samples*p.Chip.NumBlocks() {
		t.Errorf("per-block samples %d, want %d x %d",
			d.PerBlock.Samples, d.ChipLevel.Samples, p.Chip.NumBlocks())
	}
	// Per-block emergencies are rarer events than chip-level ones, so the
	// block-level TE must not exceed the chip-level TE.
	if d.PerBlock.TE > d.ChipLevel.TE {
		t.Errorf("per-block TE %.4f > chip-level TE %.4f", d.PerBlock.TE, d.ChipLevel.TE)
	}
}
