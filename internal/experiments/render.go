package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"voltsense/internal/floorplan"
)

// Render formats Table 1 the way the paper prints it.
func (d *Table1Data) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "lambda")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "%10.0f", r.Lambda)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-10s", "sensors/core")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "%10.1f", r.SensorsPerCore)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-10s", "rel err(%)")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "%10.3f", r.RelErrorPercent)
	}
	b.WriteByte('\n')
	return b.String()
}

// CSV emits Table 1 as comma-separated rows.
func (d *Table1Data) CSV() string {
	var b strings.Builder
	b.WriteString("lambda,sensors_core0,sensors_per_core,total_sensors,rel_err_pct\n")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "%g,%d,%.2f,%d,%.4f\n",
			r.Lambda, r.SensorsCore0, r.SensorsPerCore, r.TotalSensors, r.RelErrorPercent)
	}
	return b.String()
}

// Render summarizes Figure 1: a per-decade histogram of the group norms for
// each λ, plus the selected counts — the textual equivalent of the paper's
// log-scale scatter.
func (d *Fig1Data) Render() string {
	var b strings.Builder
	for li, l := range d.Lambdas {
		norms := d.Norms[li]
		fmt.Fprintf(&b, "lambda = %g: %d of %d candidates selected (T = %g)\n",
			l, len(d.Selected[li]), len(norms), d.Threshold)
		// Histogram by decade of ‖β_m‖₂.
		bins := map[int]int{}
		zero := 0
		for _, n := range norms {
			if n < 1e-12 {
				zero++
				continue
			}
			bins[int(math.Floor(math.Log10(n)))]++
		}
		keys := make([]int, 0, len(bins))
		for k := range bins {
			keys = append(keys, k)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(keys)))
		for _, k := range keys {
			fmt.Fprintf(&b, "  1e%+03d..1e%+03d : %s (%d)\n", k, k+1, strings.Repeat("#", bins[k]), bins[k])
		}
		if zero > 0 {
			fmt.Fprintf(&b, "  ~0          : %s (%d)\n", strings.Repeat("#", zero), zero)
		}
	}
	return b.String()
}

// CSV emits the per-candidate norms, one row per candidate with one column
// per λ — the raw data behind the paper's Figure 1 scatter.
func (d *Fig1Data) CSV() string {
	var b strings.Builder
	b.WriteString("candidate")
	for _, l := range d.Lambdas {
		fmt.Fprintf(&b, ",norm_lambda_%g", l)
	}
	b.WriteByte('\n')
	for m := range d.Norms[0] {
		fmt.Fprintf(&b, "%d", m)
		for li := range d.Lambdas {
			fmt.Fprintf(&b, ",%.6e", d.Norms[li][m])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MaxAbsError returns the worst prediction error (volts) of the q-sensor
// trace in Figure 2.
func (d *Fig2Data) MaxAbsError(q int) float64 {
	pred, ok := d.Pred[q]
	if !ok {
		return math.NaN()
	}
	mx := 0.0
	for i, r := range d.Real {
		if a := math.Abs(pred[i] - r); a > mx {
			mx = a
		}
	}
	return mx
}

// RMSError returns the RMS prediction error (volts) of the q-sensor trace.
func (d *Fig2Data) RMSError(q int) float64 {
	pred, ok := d.Pred[q]
	if !ok || len(d.Real) == 0 {
		return math.NaN()
	}
	s := 0.0
	for i, r := range d.Real {
		diff := pred[i] - r
		s += diff * diff
	}
	return math.Sqrt(s / float64(len(d.Real)))
}

// Render summarizes Figure 2 with per-budget error statistics and a coarse
// ASCII strip chart of the real trace against the densest prediction.
func (d *Fig2Data) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchmark %s, block %s (#%d), %d steps @ %.2g s\n",
		d.Bench, d.BlockName, d.BlockID, d.Steps, d.DT)
	qs := make([]int, 0, len(d.Pred))
	for q := range d.Pred {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	for _, q := range qs {
		fmt.Fprintf(&b, "  %d sensors/core: max |err| = %.4f V, rms = %.4f V\n",
			q, d.MaxAbsError(q), d.RMSError(q))
	}
	// Strip chart: 60 columns of the first part of the trace.
	cols := 60
	if len(d.Real) < cols {
		cols = len(d.Real)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range d.Real[:cols] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi > lo {
		b.WriteString("  real trace: ")
		ramp := " .:-=+*#%@"
		for _, v := range d.Real[:cols] {
			t := (hi - v) / (hi - lo) // deeper droop = darker
			b.WriteByte(ramp[int(t*float64(len(ramp)-1))])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV emits the Figure 2 traces: time, real, and one column per budget.
func (d *Fig2Data) CSV() string {
	var b strings.Builder
	qs := make([]int, 0, len(d.Pred))
	for q := range d.Pred {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	b.WriteString("step,real")
	for _, q := range qs {
		fmt.Fprintf(&b, ",pred_q%d", q)
	}
	b.WriteByte('\n')
	for i, r := range d.Real {
		fmt.Fprintf(&b, "%d,%.6f", i, r)
		for _, q := range qs {
			fmt.Fprintf(&b, ",%.6f", d.Pred[q][i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Render draws Figure 3: an ASCII map of the core with both placements plus
// the per-unit allocation table.
func (d *Fig3Data) Render(p *Pipeline) string {
	var b strings.Builder
	fmt.Fprintf(&b, "core %d, %d sensors each\n", d.Core, d.Q)
	b.WriteString(d.renderMap(p))
	b.WriteString("legend: P proposed, E Eagle-Eye, * both; blocks f/e/m/c by unit, '.' blank area\n")
	fmt.Fprintf(&b, "%-12s %-10s %-10s\n", "unit", "proposed", "eagle-eye")
	for u := floorplan.Frontend; u <= floorplan.Cache; u++ {
		fmt.Fprintf(&b, "%-12s %-10d %-10d\n", u, d.ProposedByUnit[u], d.EagleByUnit[u])
	}
	return b.String()
}

func (d *Fig3Data) renderMap(p *Pipeline) string {
	corb := p.Chip.Cores[d.Core].Bounds
	const w, h = 60, 20
	raster := make([][]byte, h)
	for y := range raster {
		raster[y] = make([]byte, w)
		for x := range raster[y] {
			px := corb.X0 + (float64(x)+0.5)/w*corb.Width()
			py := corb.Y0 + (float64(y)+0.5)/h*corb.Height()
			if blk := p.Chip.BlockAt(px, py); blk != nil {
				raster[y][x] = blk.Unit.String()[0]
			} else {
				raster[y][x] = '.'
			}
		}
	}
	mark := func(s Fig3Sensor, c byte) {
		x := int((s.X - corb.X0) / corb.Width() * w)
		y := int((s.Y - corb.Y0) / corb.Height() * h)
		if x < 0 || x >= w || y < 0 || y >= h {
			return
		}
		if raster[y][x] == 'P' && c == 'E' || raster[y][x] == 'E' && c == 'P' {
			raster[y][x] = '*'
			return
		}
		raster[y][x] = c
	}
	for _, s := range d.Proposed {
		mark(s, 'P')
	}
	for _, s := range d.EagleEye {
		mark(s, 'E')
	}
	var b strings.Builder
	for y := h - 1; y >= 0; y-- { // die y grows upward
		b.Write(raster[y])
		b.WriteByte('\n')
	}
	return b.String()
}

// Render formats Table 2 exactly as the paper prints it.
func (d *Table2Data) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d sensors/core (%d total)\n", d.SensorsPerCore, d.TotalSensors)
	fmt.Fprintf(&b, "%-16s | %-24s | %-24s\n", "", "Eagle-Eye", "Proposed")
	fmt.Fprintf(&b, "%-16s | %7s %8s %7s | %7s %8s %7s\n",
		"Benchmark", "ME", "WAE", "TE", "ME", "WAE", "TE")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "%-16s | %7.4f %8.4f %7.4f | %7.4f %8.4f %7.4f\n",
			r.Bench, r.EagleEye.ME, r.EagleEye.WAE, r.EagleEye.TE,
			r.Proposed.ME, r.Proposed.WAE, r.Proposed.TE)
	}
	return b.String()
}

// CSV emits Table 2 rows.
func (d *Table2Data) CSV() string {
	var b strings.Builder
	b.WriteString("benchmark,ee_me,ee_wae,ee_te,prop_me,prop_wae,prop_te\n")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "%s,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			r.Bench, r.EagleEye.ME, r.EagleEye.WAE, r.EagleEye.TE,
			r.Proposed.ME, r.Proposed.WAE, r.Proposed.TE)
	}
	return b.String()
}

// MeanRates averages the error rates across benchmarks.
func (d *Table2Data) MeanRates() (eagle, proposed [3]float64) {
	n := float64(len(d.Rows))
	for _, r := range d.Rows {
		eagle[0] += r.EagleEye.ME / n
		eagle[1] += r.EagleEye.WAE / n
		eagle[2] += r.EagleEye.TE / n
		proposed[0] += r.Proposed.ME / n
		proposed[1] += r.Proposed.WAE / n
		proposed[2] += r.Proposed.TE / n
	}
	return eagle, proposed
}

// Render formats the Figure 4 sweep.
func (d *Fig4Data) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchmark %s: error rates vs total sensors\n", d.Bench)
	fmt.Fprintf(&b, "%8s | %7s %8s %7s | %7s %8s %7s\n",
		"sensors", "EE ME", "EE WAE", "EE TE", "our ME", "our WAE", "our TE")
	for _, pt := range d.Points {
		fmt.Fprintf(&b, "%8d | %7.4f %8.4f %7.4f | %7.4f %8.4f %7.4f\n",
			pt.TotalSensors, pt.EagleEye.ME, pt.EagleEye.WAE, pt.EagleEye.TE,
			pt.Proposed.ME, pt.Proposed.WAE, pt.Proposed.TE)
	}
	return b.String()
}

// CSV emits the Figure 4 series.
func (d *Fig4Data) CSV() string {
	var b strings.Builder
	b.WriteString("total_sensors,ee_me,ee_wae,ee_te,prop_me,prop_wae,prop_te\n")
	for _, pt := range d.Points {
		fmt.Fprintf(&b, "%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			pt.TotalSensors, pt.EagleEye.ME, pt.EagleEye.WAE, pt.EagleEye.TE,
			pt.Proposed.ME, pt.Proposed.WAE, pt.Proposed.TE)
	}
	return b.String()
}
