package experiments

import (
	"fmt"
	"strings"

	"voltsense/internal/core"
	"voltsense/internal/ols"
)

// LOORow is one held-out benchmark of the leave-one-out study.
type LOORow struct {
	Bench       string
	RelErrFull  float64 // model trained on all 19 benchmarks
	RelErrLOO   float64 // model trained without this benchmark
	Degradation float64 // RelErrLOO / RelErrFull
}

// LOOData is the workload-generalization study: does a model trained on 18
// benchmarks predict the 19th? The paper trains and tests on the same suite;
// this measures how much that flatters the results.
type LOOData struct {
	SensorsPerCore int
	Rows           []LOORow
}

// LeaveOneOut refits the chip predictor 19 times, each time excluding one
// benchmark's training maps (the sensor placement is kept fixed — it is
// decided once at design time), and scores prediction on the excluded
// benchmark's held-out run.
func (p *Pipeline) LeaveOneOut(q int) (*LOOData, error) {
	_, union, err := p.ChipPlacementCount(q)
	if err != nil {
		return nil, err
	}
	full, err := p.BuildChipPredictor(union)
	if err != nil {
		return nil, err
	}
	d := &LOOData{SensorsPerCore: q}
	for bi := range p.Bench {
		cols := make([]int, 0, p.Train.N())
		for j, b := range p.Train.Bench {
			if b != bi {
				cols = append(cols, j)
			}
		}
		ds := (&core.Dataset{X: p.Train.CandV, F: p.Train.CritV}).Subset(cols)
		loo, err := core.BuildPredictor(ds, union)
		if err != nil {
			return nil, fmt.Errorf("experiments: LOO without %s: %w", p.Bench[bi].Name, err)
		}
		test := p.TestByBench[bi]
		testDS := &core.Dataset{X: test.CandV, F: test.CritV}
		row := LOORow{
			Bench:      p.Bench[bi].Name,
			RelErrFull: ols.RelativeError(full.PredictDataset(testDS), test.CritV),
			RelErrLOO:  ols.RelativeError(loo.PredictDataset(testDS), test.CritV),
		}
		if row.RelErrFull > 0 {
			row.Degradation = row.RelErrLOO / row.RelErrFull
		}
		d.Rows = append(d.Rows, row)
	}
	return d, nil
}

// WorstDegradation returns the largest LOO/full error ratio.
func (d *LOOData) WorstDegradation() float64 {
	w := 0.0
	for _, r := range d.Rows {
		if r.Degradation > w {
			w = r.Degradation
		}
	}
	return w
}

// MeanDegradation returns the average LOO/full error ratio.
func (d *LOOData) MeanDegradation() float64 {
	s := 0.0
	for _, r := range d.Rows {
		s += r.Degradation
	}
	return s / float64(len(d.Rows))
}

// Render formats the study.
func (d *LOOData) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "leave-one-benchmark-out, %d sensors/core\n", d.SensorsPerCore)
	fmt.Fprintf(&b, "%-16s %14s %14s %8s\n", "held-out bench", "full err(%)", "LOO err(%)", "ratio")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "%-16s %14.4f %14.4f %8.2f\n",
			r.Bench, 100*r.RelErrFull, 100*r.RelErrLOO, r.Degradation)
	}
	fmt.Fprintf(&b, "mean ratio %.2f, worst %.2f\n", d.MeanDegradation(), d.WorstDegradation())
	return b.String()
}
