package experiments

import (
	"fmt"
	"strings"
	"time"

	"voltsense/internal/basis"
	"voltsense/internal/core"
	"voltsense/internal/detect"
)

// This file hosts the chip-joint placement experiments: instead of the
// paper's per-core decomposition (8 independent K≈8 solves), one group
// lasso places sensors against every critical node on the chip at once
// (K = NumBlocks targets). That is the regime where the reduced-basis
// pipeline pays off — the POD compression of the targets drops the
// per-iteration cost from O(K·M²) to O(r·M²), and chip-wide voltage maps
// are so correlated that r ≪ K at 99% energy.

// chipTrainDataset is the chip-joint analogue of glTrainDataset: all
// candidate rows as features, all critical-node rows as targets, capped to
// GLSampleCap samples. Selected indices from a placement on this dataset
// are global candidate indices, directly usable by BuildChipPredictor.
func (p *Pipeline) chipTrainDataset() *core.Dataset {
	return p.capSamples(&core.Dataset{X: p.Train.CandV, F: p.Train.CritV})
}

// PlaceChipDense solves the chip-joint group lasso against all K critical
// nodes — the dense baseline the reduced solve is benchmarked against.
func (p *Pipeline) PlaceChipDense(lambda float64) (*core.Placement, error) {
	return core.PlaceSensors(p.chipTrainDataset(), core.Config{
		Lambda:    lambda,
		Threshold: p.threshold(),
		Solver:    p.Cfg.Solver,
	})
}

// PlaceChipReduced solves the same chip-joint placement in the rank-r POD
// coefficient space of the standardized targets. bc picks the rank (exact
// Rank, or the minimal rank reaching an Energy fraction).
func (p *Pipeline) PlaceChipReduced(lambda float64, bc basis.Config) (*core.ReducedPlacement, error) {
	return core.PlaceSensorsReduced(p.chipTrainDataset(), core.Config{
		Lambda:    lambda,
		Threshold: p.threshold(),
		Solver:    p.Cfg.Solver,
	}, bc)
}

// RankStudyRow is one point of the rank/accuracy trade-off: a placement +
// refit at one basis configuration, scored on the held-out maps.
type RankStudyRow struct {
	Label   string        // "dense" for the baseline, "energy=…" for reduced rows
	Rank    int           // basis rank used for the solve (K for dense)
	Energy  float64       // energy fraction the basis captures (1 for dense)
	Sensors int           // sensors selected
	Solve   time.Duration // wall-clock of the placement solve
	RelErr  float64       // relative prediction error on the held-out maps
	TE      detect.Rates  // chip-level detection rates on the held-out maps
	// RelErrDense/TEDense score the same selection refit dense (full-K
	// OLS). They separate the two places truncation could cost accuracy:
	// the selection (what the accelerated solver actually risks) and the
	// rank-r refit. On chip data with a dominant common mode the energy
	// knob can pick a tiny rank whose refit collapses while the selection
	// — and hence the dense-refit columns — stays at dense quality.
	RelErrDense float64
	TEDense     detect.Rates
}

// RankStudyData is the dense baseline plus one row per requested energy
// level, all at the same λ.
type RankStudyData struct {
	Lambda  float64
	Targets int // K, the number of critical nodes
	Rows    []RankStudyRow
}

// RankStudy measures the reduced-basis trade-off end to end: the chip-joint
// placement is solved dense and then at each requested energy level, each
// selection is refit (reduced rows via the rank-r coefficient refit) and
// scored on the held-out maps. The Solve timings make the speedup visible;
// RelErr and TE make its cost visible.
func (p *Pipeline) RankStudy(lambda float64, energies []float64) (*RankStudyData, error) {
	test := p.TestAll()
	truth := detect.TruthFromVoltages(test.CritV, p.Cfg.Vth)
	full := &core.Dataset{X: p.Train.CandV, F: p.Train.CritV}
	d := &RankStudyData{Lambda: lambda, Targets: p.Train.CritV.Rows()}

	start := time.Now()
	dense, err := p.PlaceChipDense(lambda)
	solve := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("experiments: dense chip placement: %w", err)
	}
	if len(dense.Selected) == 0 {
		return nil, fmt.Errorf("experiments: dense chip placement selected no sensors at λ=%g", lambda)
	}
	pred, err := core.BuildPredictor(full, dense.Selected)
	if err != nil {
		return nil, err
	}
	denseErr := p.RelErrorOn(pred, test)
	denseTE := detect.Score(truth, detect.AlarmsFromPredictions(p.PredictTest(pred, test), p.Cfg.Vth))
	d.Rows = append(d.Rows, RankStudyRow{
		Label:       "dense",
		Rank:        d.Targets,
		Energy:      1,
		Sensors:     len(dense.Selected),
		Solve:       solve,
		RelErr:      denseErr,
		TE:          denseTE,
		RelErrDense: denseErr,
		TEDense:     denseTE,
	})

	for _, e := range energies {
		bc := basis.Config{Energy: e}
		start = time.Now()
		rp, err := p.PlaceChipReduced(lambda, bc)
		solve = time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("experiments: reduced chip placement (energy %g): %w", e, err)
		}
		if len(rp.Selected) == 0 {
			return nil, fmt.Errorf("experiments: reduced placement (energy %g) selected no sensors at λ=%g", e, lambda)
		}
		rpred, b, err := core.BuildReducedPredictor(full, rp.Selected, bc)
		if err != nil {
			return nil, err
		}
		dpred, err := core.BuildPredictor(full, rp.Selected)
		if err != nil {
			return nil, err
		}
		d.Rows = append(d.Rows, RankStudyRow{
			Label:       fmt.Sprintf("energy=%g", e),
			Rank:        b.Rank(),
			Energy:      b.EnergyCaptured(),
			Sensors:     len(rp.Selected),
			Solve:       solve,
			RelErr:      p.RelErrorOn(rpred, test),
			TE:          detect.Score(truth, detect.AlarmsFromPredictions(p.PredictTest(rpred, test), p.Cfg.Vth)),
			RelErrDense: p.RelErrorOn(dpred, test),
			TEDense:     detect.Score(truth, detect.AlarmsFromPredictions(p.PredictTest(dpred, test), p.Cfg.Vth)),
		})
	}
	return d, nil
}

// Render formats the rank study as a fixed-width table. The "reduced
// refit" columns score the rank-r coefficient-space refit; the "dense
// refit" columns score the same selection refit against all K nodes.
func (d *RankStudyData) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chip-joint placement at λ=%g over %d critical nodes\n", d.Lambda, d.Targets)
	fmt.Fprintf(&b, "%-44s %-20s %-20s\n", "", "reduced refit", "dense refit")
	fmt.Fprintf(&b, "%-14s %6s %9s %8s %12s %11s %8s %11s %8s\n",
		"basis", "rank", "energy", "sensors", "solve", "rel err(%)", "TE", "rel err(%)", "TE")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "%-14s %6d %9.5f %8d %12s %11.3f %8.4f %11.3f %8.4f\n",
			r.Label, r.Rank, r.Energy, r.Sensors, r.Solve.Round(time.Millisecond),
			100*r.RelErr, r.TE.TE, 100*r.RelErrDense, r.TEDense.TE)
	}
	return b.String()
}

// CSV emits the rank study as comma-separated rows.
func (d *RankStudyData) CSV() string {
	var b strings.Builder
	b.WriteString("basis,rank,energy,sensors,solve_ms,rel_err_pct,me,wae,te,dense_rel_err_pct,dense_te\n")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "%s,%d,%.6f,%d,%.1f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			r.Label, r.Rank, r.Energy, r.Sensors,
			float64(r.Solve.Microseconds())/1000, 100*r.RelErr, r.TE.ME, r.TE.WAE, r.TE.TE,
			100*r.RelErrDense, r.TEDense.TE)
	}
	return b.String()
}
