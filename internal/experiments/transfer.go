package experiments

import (
	"fmt"
	"strings"

	"voltsense/internal/core"
	"voltsense/internal/detect"
	"voltsense/internal/mat"
	"voltsense/internal/transfer"
)

// TransferPoint is one labeled-sample budget in the few-shot sweep: the same
// n samples fit three ways — aligned against the golden prior, from scratch,
// and (implicitly, at n=0) pure prior — scored on the fielded die's held-out
// run.
type TransferPoint struct {
	Samples int

	AlignedRelErr float64
	Aligned       detect.Rates
	ScratchRelErr float64
	Scratch       detect.Rates

	// DeltaNNZ is the stored thin-artifact size in coefficients — what a
	// fleet store pays to persist this chip at this sample budget.
	DeltaNNZ int
}

// TransferResult is the fleet transfer-calibration ablation: a shared prior
// fit from a handful of golden chips, then a fielded chip (the drifted die)
// enrolled with n labeled samples for growing n. It answers the deployment
// question /v1/calibrate exists for: how few per-chip samples buy back the
// accuracy of a full per-chip training campaign?
type TransferResult struct {
	SegRSigma      float64
	SensorsPerCore int
	Sensors        int
	Goldens        int
	FeedSamples    int // labeled samples available from the fielded die

	// PriorOnly: the fielded die served straight off the golden prior mean
	// (zero per-chip samples).
	PriorRelErr float64
	Prior       detect.Rates
	// Full: the fielded die's own full-campaign fit on every available
	// labeled sample — the ceiling few-shot alignment is judged against.
	FullRelErr float64
	Full       detect.Rates

	Points []TransferPoint
}

// Recovered reports, for one sweep point, the fraction of the TE gap between
// prior-only serving and the full-campaign fit that alignment closed: 1 is
// full recovery, 0 none.
func (r *TransferResult) Recovered(pt *TransferPoint) float64 {
	gap := r.Prior.TE - r.Full.TE
	if gap <= 0 {
		return 1
	}
	return (r.Prior.TE - pt.Aligned.TE) / gap
}

// AblationTransfer fits the shared golden-chip prior from `goldens` mildly
// varied dies (the nominal die plus goldens−1 small-σ variants), then drifts
// a fielded die by sigma — the same perturbation as the adaptation ablation —
// and sweeps few-shot alignment against from-scratch fitting over the given
// labeled-sample counts. All models are scored on the fielded die's held-out
// run at the nominal critical nodes.
func (p *Pipeline) AblationTransfer(q int, sigma float64, goldens int, counts []int, tcfg transfer.AlignConfig) (*TransferResult, error) {
	if sigma <= 0 {
		return nil, fmt.Errorf("experiments: transfer sigma %v must be positive", sigma)
	}
	if goldens < 1 {
		goldens = 3
	}
	if len(counts) == 0 {
		counts = []int{4, 8, 16, 32, 64}
	}
	_, union, err := p.ChipPlacementCount(q)
	if err != nil {
		return nil, err
	}

	// Golden chips: the nominal die's fit plus mildly varied siblings, each
	// fit on its own training campaign. The mild σ models golden-sample
	// spread at the fab, not field drift.
	goldPreds := make([]*core.Predictor, 0, goldens)
	stamp := func(pred *core.Predictor, ds *core.Dataset) {
		residMean, residStd := pred.FitResidualStats(ds)
		pred.Lineage = &core.Lineage{
			Version: 1, Source: core.LineageSourceTrain, Samples: ds.X.Cols(),
			ResidMean: residMean, ResidStd: residStd,
		}
	}
	nominal, err := p.BuildChipPredictor(union)
	if err != nil {
		return nil, err
	}
	stamp(nominal, &core.Dataset{X: p.Train.CandV, F: p.Train.CritV})
	goldPreds = append(goldPreds, nominal)
	for g := 1; g < goldens; g++ {
		cfg := p.Cfg
		cfg.Grid.SegRSigma = sigma / 4
		cfg.Grid.PadRSigma = sigma / 8
		cfg.Grid.VariationSeed = p.Cfg.Seed + 101 + int64(g)
		sibling, err := New(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: building golden sibling %d: %w", g, err)
		}
		set := p.resampleTrainOnNodes(sibling, p.CritNodes)
		ds := &core.Dataset{X: set.CandV, F: set.CritV}
		pred, err := core.BuildPredictor(ds, union)
		if err != nil {
			return nil, fmt.Errorf("experiments: fitting golden sibling %d: %w", g, err)
		}
		stamp(pred, ds)
		goldPreds = append(goldPreds, pred)
	}
	prior, err := transfer.FitPrior(goldPreds, transfer.PriorConfig{})
	if err != nil {
		return nil, fmt.Errorf("experiments: fitting prior: %w", err)
	}

	// The fielded chip: full-σ drift, same construction and seed offset as
	// the adaptation ablation, so the two studies describe the same chip.
	cfg := p.Cfg
	cfg.Grid.SegRSigma = sigma
	cfg.Grid.PadRSigma = sigma / 2
	cfg.Grid.VariationSeed = p.Cfg.Seed + 77
	fielded, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: building fielded die: %w", err)
	}
	fieldedTest := p.resampleOnNodes(fielded, p.CritNodes)
	feed := p.resampleTrainOnNodes(fielded, p.CritNodes)
	n := feed.N()

	out := &TransferResult{
		SegRSigma:      sigma,
		SensorsPerCore: q,
		Sensors:        len(union),
		Goldens:        goldens,
		FeedSamples:    n,
	}

	priorPred := prior.Predictor()
	out.PriorRelErr = p.RelErrorOn(priorPred, fieldedTest)
	out.Prior = scoreSet(priorPred, fieldedTest, p.Cfg.Vth)

	fullFit, err := core.BuildPredictor(&core.Dataset{X: feed.CandV, F: feed.CritV}, union)
	if err != nil {
		return nil, fmt.Errorf("experiments: full-campaign fit: %w", err)
	}
	out.FullRelErr = p.RelErrorOn(fullFit, fieldedTest)
	out.Full = scoreSet(fullFit, fieldedTest, p.Cfg.Vth)

	// Few-shot sweep: m columns spread evenly across the fielded die's
	// labeled feed stand in for the m samples a field calibration would
	// collect. The feed is ordered by benchmark, so an even stride samples
	// every workload's operating region — a prefix would calibrate the chip
	// on one benchmark's conditions and degrade everywhere else.
	for _, m := range counts {
		if m > n {
			m = n
		}
		x := mat.Zeros(len(union), m)
		f := mat.Zeros(feed.CritV.Rows(), m)
		for j := 0; j < m; j++ {
			col := j * n / m
			for i, g := range union {
				x.Set(i, j, feed.CandV.At(g, col))
			}
			for i := 0; i < f.Rows(); i++ {
				f.Set(i, j, feed.CritV.At(i, col))
			}
		}
		al, err := transfer.AlignChip(prior, x, f, tcfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: aligning with %d samples: %w", m, err)
		}
		scratch, err := transfer.FitScratch(union, x, f)
		if err != nil {
			return nil, fmt.Errorf("experiments: scratch fit with %d samples: %w", m, err)
		}
		pt := TransferPoint{
			Samples:       m,
			AlignedRelErr: p.RelErrorOn(al.Predictor, fieldedTest),
			Aligned:       scoreSet(al.Predictor, fieldedTest, p.Cfg.Vth),
			ScratchRelErr: p.RelErrorOn(scratch, fieldedTest),
			Scratch:       scoreSet(scratch, fieldedTest, p.Cfg.Vth),
			DeltaNNZ:      al.Delta.NNZ(),
		}
		out.Points = append(out.Points, pt)
		if len(out.Points) > 1 && m == out.Points[len(out.Points)-2].Samples {
			out.Points = out.Points[:len(out.Points)-1] // counts clamped into a duplicate
		}
	}
	return out, nil
}

// Render formats the ablation as a table: prior-only and full-campaign
// anchors, then the few-shot sweep.
func (r *TransferResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet transfer calibration under drift (σ=%.2f, %d sensors/core, %d sensors, %d goldens)\n",
		r.SegRSigma, r.SensorsPerCore, r.Sensors, r.Goldens)
	fmt.Fprintf(&b, "%-22s %10s | %8s %8s %8s | %9s %9s\n",
		"model", "rel err(%)", "ME", "WAE", "TE", "recov(%)", "delta nnz")
	fmt.Fprintf(&b, "%-22s %10.4f | %8.4f %8.4f %8.4f | %9s %9s\n",
		"prior only (0 smp)", 100*r.PriorRelErr, r.Prior.ME, r.Prior.WAE, r.Prior.TE, "0.0", "-")
	for i := range r.Points {
		pt := &r.Points[i]
		fmt.Fprintf(&b, "%-22s %10.4f | %8.4f %8.4f %8.4f | %9.1f %9d\n",
			fmt.Sprintf("aligned (%d smp)", pt.Samples),
			100*pt.AlignedRelErr, pt.Aligned.ME, pt.Aligned.WAE, pt.Aligned.TE,
			100*r.Recovered(pt), pt.DeltaNNZ)
		fmt.Fprintf(&b, "%-22s %10.4f | %8.4f %8.4f %8.4f | %9s %9s\n",
			fmt.Sprintf("scratch (%d smp)", pt.Samples),
			100*pt.ScratchRelErr, pt.Scratch.ME, pt.Scratch.WAE, pt.Scratch.TE, "-", "-")
	}
	fmt.Fprintf(&b, "%-22s %10.4f | %8.4f %8.4f %8.4f | %9s %9s\n",
		fmt.Sprintf("full campaign (%d)", r.FeedSamples),
		100*r.FullRelErr, r.Full.ME, r.Full.WAE, r.Full.TE, "100.0", "-")
	return b.String()
}

// CSV emits the sweep for plotting, one row per sample budget.
func (r *TransferResult) CSV() string {
	var b strings.Builder
	fmt.Fprintln(&b, "samples,aligned_rel_err,aligned_te,scratch_rel_err,scratch_te,prior_te,full_te,recovered,delta_nnz")
	for i := range r.Points {
		pt := &r.Points[i]
		fmt.Fprintf(&b, "%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%d\n",
			pt.Samples, pt.AlignedRelErr, pt.Aligned.TE, pt.ScratchRelErr, pt.Scratch.TE,
			r.Prior.TE, r.Full.TE, r.Recovered(pt), pt.DeltaNNZ)
	}
	return b.String()
}
