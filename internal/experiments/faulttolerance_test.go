package experiments

import "testing"

func TestAblationFaultTolerance(t *testing.T) {
	p := quick(t)
	d, err := p.AblationFaultTolerance(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Budget 2 yields every leave-one-out singleton plus one greedy pair.
	if want := d.Sensors + 1; len(d.Points) != want {
		t.Fatalf("got %d failure sets, want %d", len(d.Points), want)
	}
	if d.Baseline.Samples == 0 || d.Baseline.Emergencies == 0 {
		t.Fatalf("degenerate baseline: %+v", d.Baseline)
	}
	for _, pt := range d.Points {
		// The headline acceptance criterion: with failed sensors, the
		// fallback's emergency miss error stays within 2x the all-sensors
		// baseline (with a small absolute allowance for a near-zero
		// baseline on the quick pipeline).
		limit := 2*d.Baseline.ME + 0.02
		if pt.Fallback.ME > limit {
			t.Errorf("failure %v: fallback ME %.4f exceeds 2x baseline %.4f",
				pt.Failed, pt.Fallback.ME, d.Baseline.ME)
		}
		// Fewer sensors can never beat the full placement on training data;
		// the held-out gap should stay moderate too.
		if pt.FallbackRel > 10*d.BaselineRelErr+0.05 {
			t.Errorf("failure %v: fallback rel err %.4f vs baseline %.4f",
				pt.Failed, pt.FallbackRel, d.BaselineRelErr)
		}
	}
	if out := d.Render(); out == "" {
		t.Fatal("empty render")
	}
	if out := d.CSV(); out == "" {
		t.Fatal("empty CSV")
	}
}
