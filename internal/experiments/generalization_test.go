package experiments

import "testing"

func TestLeaveOneOutGeneralization(t *testing.T) {
	p := quick(t)
	d, err := p.LeaveOneOut(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", d.Render())
	if len(d.Rows) != 19 {
		t.Fatalf("rows = %d", len(d.Rows))
	}
	// The model must generalize to unseen workloads: excluding one
	// benchmark's training data cannot blow the error up. The voltage
	// correlation structure is a property of the grid, not the program, so
	// degradation should be modest.
	if w := d.WorstDegradation(); w > 3 {
		t.Errorf("worst LOO degradation %.2fx; model is memorizing workloads", w)
	}
	if m := d.MeanDegradation(); m > 1.5 {
		t.Errorf("mean LOO degradation %.2fx", m)
	}
	for _, r := range d.Rows {
		if r.RelErrLOO > 0.05 {
			t.Errorf("%s: LOO error %.4f implausibly large", r.Bench, r.RelErrLOO)
		}
	}
}
