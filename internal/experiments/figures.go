package experiments

import (
	"fmt"

	"voltsense/internal/core"
	"voltsense/internal/detect"
	"voltsense/internal/eagleeye"
	"voltsense/internal/floorplan"
	"voltsense/internal/mat"
)

// Fig1Data is the paper's Figure 1: the group norm ‖β_m‖₂ of every sensor
// candidate in one core, for each λ, against the selection threshold T.
type Fig1Data struct {
	Core      int
	Lambdas   []float64
	Norms     [][]float64 // [lambda][candidate]
	Selected  [][]int     // [lambda] -> selected local candidate indices
	Threshold float64
}

// Figure1 computes Fig1Data for core 0. With no λ values given it uses
// {2, 4} — this substrate's analogue of the paper's {10, 30} pair (a
// ~2-sensor budget and a ~7-sensor budget).
func (p *Pipeline) Figure1(lambdas ...float64) (*Fig1Data, error) {
	if len(lambdas) == 0 {
		lambdas = []float64{2, 4}
	}
	d := &Fig1Data{Core: 0, Lambdas: lambdas, Threshold: p.Cfg.Threshold}
	pls, err := p.PlaceCorePath(0, lambdas)
	if err != nil {
		return nil, err
	}
	for _, pl := range pls {
		d.Norms = append(d.Norms, pl.GroupNorms)
		d.Selected = append(d.Selected, pl.LocalIdx)
	}
	return d, nil
}

// Table1Row is one λ point of the paper's Table 1.
type Table1Row struct {
	Lambda          float64
	SensorsCore0    int
	SensorsPerCore  float64 // mean over the 8 cores
	TotalSensors    int
	RelErrorPercent float64 // aggregated over all blocks and benchmarks
}

// Table1Data is the λ sweep of Table 1.
type Table1Data struct {
	Rows []Table1Row
}

// Table1 sweeps λ (nil means the config's sweep), placing sensors in every
// core, refitting the chip predictor, and scoring the aggregated relative
// error on the pooled held-out set.
func (p *Pipeline) Table1(lambdas []float64) (*Table1Data, error) {
	if lambdas == nil {
		lambdas = p.Cfg.Lambdas
	}
	testAll := p.TestAll()
	// One pass over the whole (core, λ) grid: cores concurrent, budgets
	// warm-started along each core's path.
	byLambda, err := p.ChipPlacementPath(lambdas)
	if err != nil {
		return nil, err
	}
	var d Table1Data
	for li, l := range lambdas {
		placements := byLambda[li]
		union := unionOf(placements)
		row := Table1Row{Lambda: l, SensorsCore0: len(placements[0].LocalIdx), TotalSensors: len(union)}
		row.SensorsPerCore = float64(len(union)) / float64(len(placements))
		if len(union) == 0 {
			row.RelErrorPercent = 100
		} else {
			pred, err := p.BuildChipPredictor(union)
			if err != nil {
				return nil, err
			}
			row.RelErrorPercent = 100 * p.RelErrorOn(pred, testAll)
		}
		d.Rows = append(d.Rows, row)
	}
	return &d, nil
}

// Fig2Data is the paper's Figure 2: the real voltage trace at one critical
// node against model predictions at two sensor budgets.
type Fig2Data struct {
	Bench     string
	BlockID   int
	BlockName string
	Steps     int
	DT        float64
	Real      []float64
	Pred      map[int][]float64 // sensors-per-core -> predicted trace
}

// Figure2 simulates a fresh window of one benchmark and predicts the
// critical-node trace of blockID with each per-core sensor budget in counts
// (defaults: the paper's 2 and 7).
func (p *Pipeline) Figure2(benchIdx, blockID, steps int, counts ...int) (*Fig2Data, error) {
	if benchIdx < 0 || benchIdx >= len(p.Bench) {
		return nil, fmt.Errorf("experiments: benchmark index %d out of range", benchIdx)
	}
	if blockID < 0 || blockID >= p.Chip.NumBlocks() {
		return nil, fmt.Errorf("experiments: block %d out of range", blockID)
	}
	if len(counts) == 0 {
		counts = []int{2, 7}
	}
	type predictorAt struct {
		q    int
		pred *core.Predictor
	}
	var preds []predictorAt
	for _, q := range counts {
		_, union, err := p.ChipPlacementCount(q)
		if err != nil {
			return nil, err
		}
		pr, err := p.BuildChipPredictor(union)
		if err != nil {
			return nil, err
		}
		preds = append(preds, predictorAt{q: q, pred: pr})
	}

	d := &Fig2Data{
		Bench:     p.Bench[benchIdx].Name,
		BlockID:   blockID,
		BlockName: p.Chip.Blocks[blockID].Name,
		Steps:     steps,
		DT:        p.Cfg.DT,
		Real:      make([]float64, 0, steps),
		Pred:      make(map[int][]float64, len(counts)),
	}
	for _, pa := range preds {
		d.Pred[pa.q] = make([]float64, 0, steps)
	}
	allCand := make([]float64, len(p.Grid.Candidates))
	err := p.simulate(p.Bench[benchIdx], runTrace, steps, func(t int, v []float64) {
		d.Real = append(d.Real, v[p.CritNodes[blockID]])
		for i, nd := range p.Grid.Candidates {
			allCand[i] = v[nd]
		}
		for _, pa := range preds {
			f := pa.pred.PredictFromCandidates(allCand)
			d.Pred[pa.q] = append(d.Pred[pa.q], f[blockID])
		}
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// Fig3Sensor locates one placed sensor for Figure 3.
type Fig3Sensor struct {
	CandIdx      int     // index into grid.Candidates
	X, Y         float64 // die position, mm
	NearestBlock string
	Unit         floorplan.Unit
}

// Fig3Data is the paper's Figure 3: where Eagle-Eye and the proposed
// approach put the same number of sensors in one core.
type Fig3Data struct {
	Core           int
	Q              int
	Proposed       []Fig3Sensor
	EagleEye       []Fig3Sensor
	ProposedByUnit map[floorplan.Unit]int
	EagleByUnit    map[floorplan.Unit]int
}

// Figure3 places q sensors in core c with both approaches (default q = 7,
// as in the paper).
func (p *Pipeline) Figure3(c, q int) (*Fig3Data, error) {
	pl, err := p.PlaceCoreCount(c, q)
	if err != nil {
		return nil, err
	}
	ds, candIdx := p.CoreDataset(c, p.Train)
	ee := eagleeye.Place(ds.X, ds.F, p.Cfg.Vth, q)

	d := &Fig3Data{
		Core: c, Q: q,
		ProposedByUnit: make(map[floorplan.Unit]int),
		EagleByUnit:    make(map[floorplan.Unit]int),
	}
	for _, ci := range pl.CandIdx {
		s := p.describeSensor(ci)
		d.Proposed = append(d.Proposed, s)
		d.ProposedByUnit[s.Unit]++
	}
	for _, li := range ee.Selected {
		s := p.describeSensor(candIdx[li])
		d.EagleEye = append(d.EagleEye, s)
		d.EagleByUnit[s.Unit]++
	}
	return d, nil
}

func (p *Pipeline) describeSensor(candIdx int) Fig3Sensor {
	node := p.Grid.Candidates[candIdx]
	x, y := p.Grid.NodePos(node)
	blk, _ := p.Chip.NearestBlock(x, y)
	return Fig3Sensor{CandIdx: candIdx, X: x, Y: y, NearestBlock: blk.Name, Unit: blk.Unit}
}

// Table2Row is one benchmark of the paper's Table 2.
type Table2Row struct {
	Bench    string
	EagleEye detect.Rates
	Proposed detect.Rates
}

// Table2Data compares detection error rates per benchmark at a fixed sensor
// budget.
type Table2Data struct {
	SensorsPerCore int
	TotalSensors   int
	Rows           []Table2Row
}

// Table2 reproduces Table 2: both approaches get the same total sensor
// budget (q per core for the proposed method; the same chip-wide total for
// Eagle-Eye's global greedy), then every benchmark's held-out run is scored
// with the paper's three error rates.
func (p *Pipeline) Table2(q int) (*Table2Data, error) {
	_, union, err := p.ChipPlacementCount(q)
	if err != nil {
		return nil, err
	}
	pred, err := p.BuildChipPredictor(union)
	if err != nil {
		return nil, err
	}
	ee := eagleeye.Place(p.Train.CandV, p.Train.CritV, p.Cfg.Vth, len(union))

	d := &Table2Data{SensorsPerCore: q, TotalSensors: len(union)}
	for bi, s := range p.TestByBench {
		truth := detect.TruthFromVoltages(s.CritV, p.Cfg.Vth)
		predicted := p.PredictTest(pred, s)
		row := Table2Row{
			Bench:    p.Bench[bi].Name,
			Proposed: detect.Score(truth, detect.AlarmsFromPredictions(predicted, p.Cfg.Vth)),
			EagleEye: detect.Score(truth, ee.Alarms(s.CandV)),
		}
		d.Rows = append(d.Rows, row)
	}
	return d, nil
}

// Fig4Point is one sensor-budget point of Figure 4.
type Fig4Point struct {
	TotalSensors int
	EagleEye     detect.Rates
	Proposed     detect.Rates
}

// Fig4Data sweeps the sensor budget for one benchmark.
type Fig4Data struct {
	Bench  string
	Points []Fig4Point
}

// Figure4 reproduces Figure 4 for the given benchmark: error rates versus
// the total number of allocated sensors. perCore lists the per-core budgets
// to sweep (defaults 1..6).
func (p *Pipeline) Figure4(benchIdx int, perCore ...int) (*Fig4Data, error) {
	if benchIdx < 0 || benchIdx >= len(p.Bench) {
		return nil, fmt.Errorf("experiments: benchmark index %d out of range", benchIdx)
	}
	if len(perCore) == 0 {
		perCore = []int{1, 2, 3, 4, 5, 6}
	}
	s := p.TestByBench[benchIdx]
	truth := detect.TruthFromVoltages(s.CritV, p.Cfg.Vth)
	d := &Fig4Data{Bench: p.Bench[benchIdx].Name}
	for _, q := range perCore {
		_, union, err := p.ChipPlacementCount(q)
		if err != nil {
			return nil, err
		}
		pred, err := p.BuildChipPredictor(union)
		if err != nil {
			return nil, err
		}
		ee := eagleeye.Place(p.Train.CandV, p.Train.CritV, p.Cfg.Vth, len(union))
		pt := Fig4Point{
			TotalSensors: len(union),
			Proposed:     detect.Score(truth, detect.AlarmsFromPredictions(p.PredictTest(pred, s), p.Cfg.Vth)),
			EagleEye:     detect.Score(truth, ee.Alarms(s.CandV)),
		}
		d.Points = append(d.Points, pt)
	}
	return d, nil
}

// GLDirectComparison quantifies the Section 2.3 bias: relative error of the
// biased Eq. 14 model versus the OLS refit, per core, at budget λ. It is the
// ablation DESIGN.md calls "GL-direct vs OLS refit".
type GLDirectComparison struct {
	Lambda       float64
	RelErrGL     float64
	RelErrRefit  float64
	SensorsCore0 int
}

// AblationGLDirect runs the comparison on core 0.
func (p *Pipeline) AblationGLDirect(lambda float64) (*GLDirectComparison, error) {
	ds, _ := p.glTrainDataset(0)
	pl, err := core.PlaceSensors(ds, core.Config{Lambda: lambda, Threshold: p.Cfg.Threshold, Solver: p.Cfg.Solver})
	if err != nil {
		return nil, err
	}
	if len(pl.Selected) == 0 {
		return nil, fmt.Errorf("experiments: λ=%v selected no sensors", lambda)
	}
	fullTrain, _ := p.CoreDataset(0, p.Train)
	pred, err := core.BuildPredictor(fullTrain, pl.Selected)
	if err != nil {
		return nil, err
	}
	glp, err := core.BuildGLDirect(pl)
	if err != nil {
		return nil, err
	}
	test, _ := p.CoreDataset(0, p.TestAll())
	return &GLDirectComparison{
		Lambda:       lambda,
		SensorsCore0: len(pl.Selected),
		RelErrRefit:  relErr(pred.PredictDataset(test), test.F),
		RelErrGL:     relErr(glp.PredictDataset(test), test.F),
	}, nil
}

func relErr(pred, truth *mat.Matrix) float64 {
	den := truth.FrobeniusNorm()
	if den == 0 {
		return 0
	}
	return mat.FrobeniusDistance(pred, truth) / den
}
