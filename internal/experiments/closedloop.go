package experiments

import (
	"fmt"

	"voltsense/internal/monitor"
	"voltsense/internal/pdn"
)

// ClosedLoopResult is the capstone experiment: the placed sensors and
// prediction model drive a throttle, and throttling measurably reduces
// voltage emergencies — the end the paper's introduction motivates
// ("identify impending emergencies and prevent their occurrence by
// throttling mechanisms").
type ClosedLoopResult struct {
	Bench          string
	SensorsPerCore int
	Steps          int

	// Open loop: the benchmark runs unmanaged.
	OpenEmergencySteps int // steps with any critical node below Vth

	// Closed loop: alarms throttle the affected cores' current draw.
	ClosedEmergencySteps int
	ThrottleSteps        int // core-steps spent throttled (performance cost)
	Alarms               int
}

// throttleFactor is the current reduction a throttled core runs at (clock
// and issue throttling roughly halve switching activity).
const throttleFactor = 0.55

// throttleHold is how many steps a throttle stays asserted after the last
// alarm on its core.
const throttleHold = 6

// ClosedLoop simulates benchIdx's held-out run twice: once unmanaged and
// once with the q-sensors-per-core monitor throttling the cores whose
// blocks alarm. Because throttling changes the currents, this runs its own
// step-by-step simulation rather than reusing recorded samples.
func (p *Pipeline) ClosedLoop(benchIdx, q, steps int) (*ClosedLoopResult, error) {
	if benchIdx < 0 || benchIdx >= len(p.Bench) {
		return nil, fmt.Errorf("experiments: benchmark index %d out of range", benchIdx)
	}
	_, union, err := p.ChipPlacementCount(q)
	if err != nil {
		return nil, err
	}
	pred, err := p.BuildChipPredictor(union)
	if err != nil {
		return nil, err
	}

	bench := p.Bench[benchIdx]
	total := p.Cfg.Warmup + steps
	tr := p.generateTrace(bench, total, runTest)
	ct := p.Power.Currents(tr)

	res := &ClosedLoopResult{Bench: bench.Name, SensorsPerCore: q, Steps: steps}

	// Open loop.
	open, err := p.countEmergencies(ct.Currents, total, nil, nil)
	if err != nil {
		return nil, err
	}
	res.OpenEmergencySteps = open

	// Closed loop: a monitor drives per-core throttle timers.
	mon, err := monitor.New(pred, p.Chip.NumBlocks(), monitor.Config{Vth: p.Cfg.Vth}, nil)
	if err != nil {
		return nil, err
	}
	throttleLeft := make([]int, len(p.Chip.Cores))
	sensorV := make([]float64, len(union))
	closed, err := p.countEmergencies(ct.Currents, total, func(t int, v []float64, cur []float64) {
		// Read the placed sensors from the *previous* step's voltages (one
		// sampling cycle of latency), predict, and throttle alarmed cores.
		for i, s := range union {
			sensorV[i] = v[p.Grid.Candidates[s]]
		}
		for _, e := range mon.Process(t, sensorV) {
			if e.Kind == monitor.AlarmRaised {
				res.Alarms++
				throttleLeft[p.Chip.Blocks[e.Block].Core] = throttleHold
			}
		}
		for c, left := range throttleLeft {
			if left <= 0 {
				continue
			}
			throttleLeft[c]--
			if t >= p.Cfg.Warmup {
				res.ThrottleSteps++
			}
			for _, b := range p.Chip.Cores[c].Blocks {
				cur[b.ID] *= throttleFactor
			}
		}
	}, nil)
	if err != nil {
		return nil, err
	}
	res.ClosedEmergencySteps = closed
	return res, nil
}

// countEmergencies integrates the grid under the given block currents and
// counts post-warmup steps with any critical node below Vth. control, when
// non-nil, may mutate the current vector each step (throttling) based on
// the previous step's voltages. onStep, when non-nil, observes voltages.
func (p *Pipeline) countEmergencies(currents [][]float64, total int,
	control func(t int, prevV []float64, cur []float64), onStep func(t int, v []float64)) (int, error) {
	sim, err := pdn.NewSimulatorBackend(p.Grid, p.Cfg.DT, p.Cfg.Backend)
	if err != nil {
		return 0, err
	}
	loader := pdn.NewBlockLoader(p.Grid)
	cur := make([]float64, p.Chip.NumBlocks())
	prevV := make([]float64, p.Grid.NumNodes())
	for i := range prevV {
		prevV[i] = p.Grid.Cfg.VDD
	}
	// Settle on the first step's unthrottled currents.
	for b := range cur {
		cur[b] = currents[b][0]
	}
	if err := sim.Settle(loader.Loads(cur)); err != nil {
		return 0, err
	}
	emergencies := 0
	for t := 0; t < total; t++ {
		for b := range cur {
			cur[b] = currents[b][t]
		}
		if control != nil {
			control(t, prevV, cur)
		}
		v := sim.Step(loader.Loads(cur))
		if t >= p.Cfg.Warmup {
			for _, nd := range p.CritNodes {
				if v[nd] < p.Cfg.Vth {
					emergencies++
					break
				}
			}
		}
		copy(prevV, v)
		if onStep != nil {
			onStep(t, v)
		}
	}
	return emergencies, nil
}
