package experiments

import "testing"

func TestClosedLoopThrottlingReducesEmergencies(t *testing.T) {
	p := quick(t)
	bench := p.BusiestBenchmark()
	d, err := p.ClosedLoop(bench, 2, 400)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s: open %d vs closed %d emergency steps (%d alarms, %d throttled core-steps)",
		d.Bench, d.OpenEmergencySteps, d.ClosedEmergencySteps, d.Alarms, d.ThrottleSteps)
	if d.OpenEmergencySteps == 0 {
		t.Skip("no emergencies in the open-loop window")
	}
	if d.Alarms == 0 {
		t.Fatal("monitor never alarmed despite open-loop emergencies")
	}
	// Throttling must substantially reduce emergency exposure.
	if d.ClosedEmergencySteps*2 > d.OpenEmergencySteps {
		t.Errorf("closed loop removed under half the emergencies: %d -> %d",
			d.OpenEmergencySteps, d.ClosedEmergencySteps)
	}
	// The throttle must actually release: a loop that pins every core at
	// the floor for the whole run is a thermostat stuck on.
	if total := d.Steps * len(p.Chip.Cores); d.ThrottleSteps >= total*95/100 {
		t.Errorf("throttled %d of %d core-steps; the throttle never releases",
			d.ThrottleSteps, total)
	}
}

func TestClosedLoopBadBench(t *testing.T) {
	p := quick(t)
	if _, err := p.ClosedLoop(99, 2, 50); err == nil {
		t.Fatal("expected error")
	}
}
