// Package experiments is the end-to-end harness that regenerates every table
// and figure of the paper's evaluation: it builds the chip, synthesizes the
// 19 workloads, runs the power-grid transient simulations, collects training
// and test voltage maps, and drives the placement/prediction/detection
// machinery from the other packages.
//
// The paper artifacts map as: Table 1 → Table1 (λ sweep, Section 3.1),
// Table 2 → Table2 (ME/WAE/TE vs Eagle-Eye, Section 3.2), Figures 1-4 →
// Figure1..Figure4. Beyond the paper, the Ablation* methods stress the
// methodology's assumptions — alternative selectors, imperfect sensors,
// process variation, workload holdout, closed-loop throttling, and
// AblationFaultTolerance, which fails placed sensors on the held-out data
// and compares feeding stuck readings to the primary Eq. 17 model against
// switching to the leave-k-out fallbacks served by internal/serve.
package experiments

import (
	"fmt"

	"voltsense/internal/floorplan"
	"voltsense/internal/grid"
	"voltsense/internal/lasso"
	"voltsense/internal/pdn"
	"voltsense/internal/sparse"
)

// BatchMode controls whether the pipeline steps every benchmark's transient
// through one blocked multi-RHS solve (pdn.BatchSimulator) instead of
// fanning independent simulators across workers.
type BatchMode int

const (
	// BatchAuto batches exactly when the resolved backend is Sparse — there
	// the multi-RHS solve amortizes the dominant matrix/factor memory
	// streams; the banded backend gains nothing over the simulator pool.
	BatchAuto BatchMode = iota
	// BatchOn forces lock-stepped batched collection on either backend.
	BatchOn
	// BatchOff forces the per-benchmark simulator fan-out.
	BatchOff
)

// String names the mode.
func (m BatchMode) String() string {
	switch m {
	case BatchAuto:
		return "auto"
	case BatchOn:
		return "on"
	case BatchOff:
		return "off"
	}
	return fmt.Sprintf("BatchMode(%d)", int(m))
}

// TraceSource selects which GEM5 substitute drives the pipeline.
type TraceSource int

// Trace sources.
const (
	// TraceMarkov is the phase-shaped stochastic activity generator
	// (package workload) — fast, the default.
	TraceMarkov TraceSource = iota
	// TraceUarch is the microarchitectural performance model (package
	// uarch): activity derived from instruction mix, issue limits, cache
	// misses and branch behaviour.
	TraceUarch
)

// String names the source.
func (s TraceSource) String() string {
	switch s {
	case TraceMarkov:
		return "markov"
	case TraceUarch:
		return "uarch"
	default:
		return fmt.Sprintf("TraceSource(%d)", int(s))
	}
}

// Config sizes the whole pipeline.
type Config struct {
	Chip floorplan.Config
	Grid grid.Config

	DT         float64 // transient step, seconds
	Warmup     int     // steps discarded at the start of every run
	TrainSteps int     // simulated post-warmup steps per benchmark (training run)
	TrainMaps  int     // voltage maps randomly sampled from the training runs
	TestSteps  int     // maps recorded per benchmark from the held-out run
	TestStride int     // record every TestStride-th step of the test run
	CalibSteps int     // steps per benchmark for the critical-node scan

	Seed        int64
	Workers     int         // parallel benchmark simulations; 0 = GOMAXPROCS
	TraceSource TraceSource // workload generator; default TraceMarkov
	// Backend selects the transient linear-solver backend for every
	// simulator the pipeline builds (pdn.Auto picks banded Cholesky for
	// narrow meshes and IC-preconditioned CG for wide ones; see
	// pdn.NewSimulatorBackend). Leave zero for Auto.
	Backend pdn.Backend
	// Precond selects the sparse-backend preconditioner (auto/ic/jacobi/
	// cheby). Ignored by the banded backend. Leave zero for Auto (MIC(0)).
	Precond sparse.Precond
	// SparseWorkers bounds the worker shares each sparse solver's
	// row-partitioned kernels use (0 = the mat pool default, 1 = serial).
	// Results are bitwise identical across settings.
	SparseWorkers int
	// BatchTraces controls blocked multi-RHS trace collection: when active,
	// the calibration, training and test runs step all benchmarks through
	// one pdn.BatchSimulator instead of per-benchmark simulators. Collected
	// voltages are bitwise identical either way.
	BatchTraces BatchMode
	// ThermalFeedback couples per-run average power to a steady-state
	// temperature map and scales block leakage accordingly (hotter blocks
	// leak more), deepening droops on hot benchmarks.
	ThermalFeedback bool
	Vth             float64 // emergency threshold, volts
	Threshold       float64 // group-norm selection threshold T
	GLSampleCap     int     // max training samples fed to the group-lasso solver
	Solver          lasso.Options

	Lambdas []float64 // the Table 1 λ sweep
}

// DefaultConfig mirrors the paper's experimental scale: the 8-core chip, 19
// benchmarks, 10,000 training maps and the λ ∈ {10..60} sweep. A full
// pipeline build takes on the order of a minute.
func DefaultConfig() Config {
	return Config{
		Chip:        floorplan.DefaultConfig(),
		Grid:        grid.DefaultConfig(),
		DT:          5e-10,
		Warmup:      100,
		TrainSteps:  1200,
		TrainMaps:   10000,
		TestSteps:   350,
		TestStride:  3,
		CalibSteps:  300,
		Seed:        1,
		Vth:         0.85,
		Threshold:   1e-3,
		GLSampleCap: 1500,
		Solver:      lasso.Options{MaxIter: 600, Tol: 1e-6},
		// The paper sweeps λ ∈ {10..60} on its grid; the equivalent sweep
		// on this substrate (same 2→16 sensors-per-core trajectory) sits at
		// smaller budgets because the candidate pools and correlation
		// structure differ. EXPERIMENTS.md records the mapping.
		Lambdas: []float64{2, 3, 4, 5, 6, 8},
	}
}

// QuickConfig is a reduced pipeline for tests and iterative development: a
// coarser mesh, fewer samples, looser solver budgets. It preserves every
// qualitative property (emergency rates, correlation structure) at ~10x
// lower cost.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Grid.NX, cfg.Grid.NY = 52, 23
	cfg.Warmup = 60
	cfg.TrainSteps = 500
	cfg.TrainMaps = 3000
	cfg.TestSteps = 120
	cfg.TestStride = 3
	cfg.CalibSteps = 150
	cfg.GLSampleCap = 800
	cfg.Solver = lasso.Options{MaxIter: 400, Tol: 1e-5}
	return cfg
}
