package experiments

import (
	"fmt"
	"strings"

	"voltsense/internal/core"
	"voltsense/internal/detect"
)

// FaultPoint is one covered sensor-failure set of the fault-tolerance
// ablation: the same held-out samples scored twice, once feeding the stuck
// readings into the primary model (what a runtime without the degradation
// tier silently does) and once through the matching leave-k-out fallback.
type FaultPoint struct {
	Failed        []int // positions within the placement (0..Q-1)
	FailedGlobal  []int // global candidate indices of the failed sensors
	NaiveRelErr   float64
	FallbackRel   float64
	Naive         detect.Rates
	Fallback      detect.Rates
	TrainFallback float64 // the fallback's training-time relative error
}

// FaultTolerance is the Table-2-style ablation result: emergency detection
// quality versus number of failed sensors, naive versus fallback.
type FaultTolerance struct {
	SensorsPerCore int
	Budget         int
	Sensors        int // Q, total placed sensors
	BaselineRelErr float64
	Baseline       detect.Rates // all sensors healthy
	Points         []FaultPoint
}

// AblationFaultTolerance quantifies what sensor failures cost at runtime.
// It places q sensors per core, fits the primary Eq. 17 model plus
// leave-k-out fallbacks up to the budget, then fails each covered sensor
// set on the held-out data: the failed sensors freeze at their first test
// reading (a stuck sensor holds its last sampled value) while the rails
// keep moving. The naive scheme pushes the frozen readings through the
// primary model; the fallback scheme switches to the precomputed submodel
// that excludes them — exactly what internal/serve does live.
func (p *Pipeline) AblationFaultTolerance(q, budget int) (*FaultTolerance, error) {
	_, union, err := p.ChipPlacementCount(q)
	if err != nil {
		return nil, err
	}
	ds := &core.Dataset{X: p.Train.CandV, F: p.Train.CritV}
	pred, err := core.BuildPredictorWithFallbacks(ds, union, budget)
	if err != nil {
		return nil, err
	}
	test := p.TestAll()
	truth := detect.TruthFromVoltages(test.CritV, p.Cfg.Vth)
	sensorRows := test.CandV.SelectRows(union)

	out := &FaultTolerance{
		SensorsPerCore: q,
		Budget:         budget,
		Sensors:        len(union),
	}
	base := pred.Model.PredictMatrix(sensorRows)
	out.BaselineRelErr = relErr(base, test.CritV)
	out.Baseline = detect.Score(truth, detect.AlarmsFromPredictions(base, p.Cfg.Vth))

	for _, fm := range pred.Fallbacks.Models {
		// Stuck readings: the failed rows hold their first held-out value
		// for the whole evaluation.
		corrupted := sensorRows.Clone()
		for _, pos := range fm.Excluded {
			row := corrupted.Row(pos)
			frozen := row[0]
			for j := range row {
				row[j] = frozen
			}
		}
		naive := pred.Model.PredictMatrix(corrupted)

		kept := make([]int, 0, len(union)-len(fm.Excluded))
		failedGlobal := make([]int, 0, len(fm.Excluded))
		ex := make(map[int]bool, len(fm.Excluded))
		for _, pos := range fm.Excluded {
			ex[pos] = true
			failedGlobal = append(failedGlobal, union[pos])
		}
		for pos, g := range union {
			if !ex[pos] {
				kept = append(kept, g)
			}
		}
		fb := fm.Model.PredictMatrix(test.CandV.SelectRows(kept))

		out.Points = append(out.Points, FaultPoint{
			Failed:        append([]int(nil), fm.Excluded...),
			FailedGlobal:  failedGlobal,
			NaiveRelErr:   relErr(naive, test.CritV),
			FallbackRel:   relErr(fb, test.CritV),
			Naive:         detect.Score(truth, detect.AlarmsFromPredictions(naive, p.Cfg.Vth)),
			Fallback:      detect.Score(truth, detect.AlarmsFromPredictions(fb, p.Cfg.Vth)),
			TrainFallback: fm.RelError,
		})
	}
	return out, nil
}

// Render formats the ablation as a table, one row per failure set.
func (f *FaultTolerance) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault tolerance at %d sensors/core (%d sensors, fallback budget %d)\n",
		f.SensorsPerCore, f.Sensors, f.Budget)
	fmt.Fprintf(&b, "%-14s %10s | %8s %8s %8s | %8s %8s %8s\n",
		"failed", "rel err(%)", "naive ME", "WAE", "TE", "fb ME", "WAE", "TE")
	fmt.Fprintf(&b, "%-14s %10.4f | %8.4f %8.4f %8.4f | %8s %8s %8s\n",
		"none", 100*f.BaselineRelErr, f.Baseline.ME, f.Baseline.WAE, f.Baseline.TE, "-", "-", "-")
	for _, pt := range f.Points {
		label := strings.Trim(strings.ReplaceAll(fmt.Sprint(pt.Failed), " ", ","), "[]")
		fmt.Fprintf(&b, "%-14s %10.4f | %8.4f %8.4f %8.4f | %8.4f %8.4f %8.4f\n",
			fmt.Sprintf("{%s}", label), 100*pt.FallbackRel,
			pt.Naive.ME, pt.Naive.WAE, pt.Naive.TE,
			pt.Fallback.ME, pt.Fallback.WAE, pt.Fallback.TE)
	}
	return b.String()
}

// CSV emits the ablation for plotting.
func (f *FaultTolerance) CSV() string {
	var b strings.Builder
	fmt.Fprintln(&b, "failed,num_failed,fallback_rel_err,naive_me,naive_wae,naive_te,fb_me,fb_wae,fb_te")
	fmt.Fprintf(&b, "none,0,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n",
		f.BaselineRelErr, f.Baseline.ME, f.Baseline.WAE, f.Baseline.TE,
		f.Baseline.ME, f.Baseline.WAE, f.Baseline.TE)
	for _, pt := range f.Points {
		label := strings.Trim(strings.ReplaceAll(fmt.Sprint(pt.Failed), " ", ";"), "[]")
		fmt.Fprintf(&b, "%s,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n",
			label, len(pt.Failed), pt.FallbackRel,
			pt.Naive.ME, pt.Naive.WAE, pt.Naive.TE,
			pt.Fallback.ME, pt.Fallback.WAE, pt.Fallback.TE)
	}
	return b.String()
}
