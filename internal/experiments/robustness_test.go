package experiments

import (
	"testing"

	"voltsense/internal/sensor"
)

func TestSensorRobustnessSweep(t *testing.T) {
	p := quick(t)
	d, err := p.AblationSensorRobustness(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", d.Render())
	if len(d.Points) != len(DefaultSensorSweep()) {
		t.Fatalf("points = %d", len(d.Points))
	}
	// Ideal sensors must be at least as accurate as any imperfect point.
	for _, pt := range d.Points {
		if pt.RelError < d.Ideal.RelError*(1-1e-9) {
			t.Errorf("%s beat ideal sensors: %v < %v", pt.Label, pt.RelError, d.Ideal.RelError)
		}
	}
	// Monotonicity in ADC resolution (noiseless points): fewer bits must
	// not improve prediction error.
	var errByBits = map[int]float64{}
	for _, pt := range d.Points {
		if pt.NoiseSigma == 0 {
			errByBits[pt.Bits] = pt.RelError
		}
	}
	if errByBits[6] < errByBits[12] {
		t.Errorf("6-bit ADC (%v) beat 12-bit (%v)", errByBits[6], errByBits[12])
	}
	// A 12-bit ADC (0.15 mV LSB) should be essentially free: within 2x of
	// ideal relative error.
	if errByBits[12] > 2*d.Ideal.RelError {
		t.Errorf("12-bit ADC error %v far above ideal %v", errByBits[12], d.Ideal.RelError)
	}
}

func TestSensorRobustnessCustomPoint(t *testing.T) {
	p := quick(t)
	// A deliberately terrible sensor: 4-bit ADC (40 mV LSB).
	bad := []sensor.Model{{Gain: 1, Bits: 4, FullScaleL: 0.5, FullScaleH: 1.1}}
	d, err := p.AblationSensorRobustness(2, bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Points) != 1 {
		t.Fatalf("points = %d", len(d.Points))
	}
	if d.Points[0].RelError < 3*d.Ideal.RelError {
		t.Errorf("4-bit ADC error %v suspiciously close to ideal %v",
			d.Points[0].RelError, d.Ideal.RelError)
	}
	// Detection collapses towards coin-flipping (a 40 mV LSB straddles the
	// emergency threshold) but must stay a valid rate.
	if te := d.Points[0].Rates.TE; te < 0.05 || te > 0.8 {
		t.Errorf("4-bit TE %v outside the expected degradation band", te)
	}
}
