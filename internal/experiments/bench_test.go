package experiments

import (
	"sync"
	"testing"

	"voltsense/internal/basis"
	"voltsense/internal/core"
)

// The placement benchmarks share one built pipeline: collection cost is
// measured separately, and rebuilding the substrate per iteration would
// swamp the solver time being compared.
var (
	benchOnce sync.Once
	benchPipe *Pipeline
	benchErr  error
)

func benchPipeline(b *testing.B) *Pipeline {
	benchOnce.Do(func() {
		benchPipe, benchErr = New(tinyConfig())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchPipe
}

// BenchmarkPlacementPathWarm sweeps the full (core, λ) placement grid the
// way Table 1 now does: cores concurrent, each core solving its λ path off
// one Gram with warm starts and screening. The cache is cleared every
// iteration so real solves are measured.
func BenchmarkPlacementPathWarm(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ClearPlacementCache()
		if _, err := p.ChipPlacementPath(p.Cfg.Lambdas); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlacementColdPerPoint is the pre-path baseline: every (core, λ)
// cell solved independently by core.PlaceSensors — fresh standardization,
// fresh Gram, zero start — exactly what the serial Table 1 loop used to do.
// benchreport pairs this against BenchmarkPlacementPathWarm.
func BenchmarkPlacementColdPerPoint(b *testing.B) {
	p := benchPipeline(b)
	opts := p.Cfg.Solver
	if opts.MaxIter < 3000 {
		opts.MaxIter = 3000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := range p.Chip.Cores {
			ds, _ := p.glTrainDataset(c)
			for _, l := range p.Cfg.Lambdas {
				if _, err := core.PlaceSensors(ds, core.Config{
					Lambda:    l,
					Threshold: p.Cfg.Threshold,
					Solver:    opts,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// collectBench builds the whole pipeline — calibration scan plus training
// and held-out trace collection across every benchmark — at the given worker
// count. This is the end-to-end collection cost benchreport tracks.
func collectBench(b *testing.B, workers int) {
	cfg := tinyConfig()
	cfg.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectSerial pins trace collection to one worker.
func BenchmarkCollectSerial(b *testing.B) { collectBench(b, 1) }

// BenchmarkCollectParallel runs trace collection at the default worker count
// (GOMAXPROCS); benchreport pairs it against BenchmarkCollectSerial for the
// multi-core speedup number.
func BenchmarkCollectParallel(b *testing.B) { collectBench(b, 0) }

// chipBenchLambdas is the λ ladder of the chip-joint benchmarks. Chip-joint
// group norms aggregate K = NumBlocks targets instead of a core's ~30, so
// the useful budgets sit well above the per-core Table 1 sweep.
var chipBenchLambdas = []float64{32, 24, 16, 12, 8, 4}

// BenchmarkPlaceChipDense vs BenchmarkPlaceChipReduced: one chip-joint
// placement solved against all K critical nodes versus the same solve in
// the 99%-energy POD coefficient space (r ≪ K). benchreport pairs them for
// the reduced-basis speedup number.
func BenchmarkPlaceChipDense(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PlaceChipDense(12); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlaceChipReduced(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PlaceChipReduced(12, basis.Config{Energy: 0.99}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlaceChipPathDense vs BenchmarkPlaceChipPathReduced: the full
// chip-joint λ path, where the one-time basis fit amortizes across the
// sweep and the per-iteration O(r/K) saving compounds.
func BenchmarkPlaceChipPathDense(b *testing.B) {
	p := benchPipeline(b)
	ds := p.chipTrainDataset()
	cfg := core.Config{Threshold: p.threshold(), Solver: p.Cfg.Solver}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PlaceSensorsPath(ds, chipBenchLambdas, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlaceChipPathReduced(b *testing.B) {
	p := benchPipeline(b)
	ds := p.chipTrainDataset()
	cfg := core.Config{Threshold: p.threshold(), Solver: p.Cfg.Solver}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PlaceSensorsPathReduced(ds, chipBenchLambdas, cfg, basis.Config{Energy: 0.99}); err != nil {
			b.Fatal(err)
		}
	}
}
