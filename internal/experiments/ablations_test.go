package experiments

import (
	"testing"
)

func TestAblationOLSMagnitude(t *testing.T) {
	p := quick(t)
	d, err := p.AblationOLSMagnitude(4)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("OLS-magnitude: GL err %.5f vs alt err %.5f (overlap %d/%d)",
		d.RelErrGL, d.RelErrAlt, d.OverlapsGL, d.Q)
	if len(d.AltSelected) != 4 {
		t.Fatalf("alt selected %d sensors", len(d.AltSelected))
	}
	// The paper's claim is that magnitude ranking is unreliable, not that
	// it is always worse; require only that GL is competitive.
	if d.RelErrGL > 2*d.RelErrAlt {
		t.Errorf("GL selection (%.5f) much worse than OLS-magnitude (%.5f)", d.RelErrGL, d.RelErrAlt)
	}
}

func TestAblationPlainLasso(t *testing.T) {
	p := quick(t)
	d, err := p.AblationPlainLasso(4)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("plain lasso: GL err %.5f vs alt err %.5f (overlap %d/%d)",
		d.RelErrGL, d.RelErrAlt, d.OverlapsGL, d.Q)
	if len(d.AltSelected) != 4 {
		t.Fatalf("alt selected %d sensors", len(d.AltSelected))
	}
	if d.RelErrGL > 2*d.RelErrAlt {
		t.Errorf("GL selection (%.5f) much worse than plain lasso (%.5f)", d.RelErrGL, d.RelErrAlt)
	}
}

func TestAblationPCA(t *testing.T) {
	p := quick(t)
	d, err := p.AblationPCA(4)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("PCA: GL err %.5f vs alt err %.5f (overlap %d/%d)",
		d.RelErrGL, d.RelErrAlt, d.OverlapsGL, d.Q)
	if len(d.AltSelected) != 4 {
		t.Fatalf("alt selected %d sensors", len(d.AltSelected))
	}
	// Unsupervised PCA must not beat the supervised selection.
	if d.RelErrAlt < d.RelErrGL*0.99 {
		t.Errorf("PCA (%.5f) beat group lasso (%.5f)", d.RelErrAlt, d.RelErrGL)
	}
}

func TestAblationSensorsInFA(t *testing.T) {
	p := quick(t)
	d, err := p.AblationSensorsInFA(4)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("FA sensors: BA-only err %.5f vs with-FA err %.5f (%d FA sites chosen)",
		d.RelErrBAOnly, d.RelErrWithFA, d.FASelected)
	// The paper's closing remark: admitting FA sites should help (or at
	// least not hurt). Allow numerical slack.
	if d.RelErrWithFA > d.RelErrBAOnly*1.2 {
		t.Errorf("FA-extended placement err %.5f worse than BA-only %.5f",
			d.RelErrWithFA, d.RelErrBAOnly)
	}
	if d.FASelected == 0 {
		t.Log("note: no FA site selected; BA correlation already sufficient")
	}
}
