package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestTable1ShapeMatchesPaper(t *testing.T) {
	p := quick(t)
	d, err := p.Table1(nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", d.Render())
	if len(d.Rows) != len(p.Cfg.Lambdas) {
		t.Fatalf("rows = %d", len(d.Rows))
	}
	// Paper shape: sensor count grows with λ (small numerical dips at the
	// selection threshold are tolerated), relative error shrinks, and error
	// is already below 1% at the smallest λ.
	for i := 1; i < len(d.Rows); i++ {
		floor := d.Rows[i-1].TotalSensors * 85 / 100
		if d.Rows[i].TotalSensors < floor {
			t.Errorf("sensor count dropped at λ=%v: %d after %d",
				d.Rows[i].Lambda, d.Rows[i].TotalSensors, d.Rows[i-1].TotalSensors)
		}
	}
	first, last := d.Rows[0], d.Rows[len(d.Rows)-1]
	if first.TotalSensors == 0 {
		t.Fatalf("smallest λ=%v selected nothing", first.Lambda)
	}
	if last.TotalSensors <= first.TotalSensors {
		t.Errorf("λ sweep did not grow the sensor set: %d → %d", first.TotalSensors, last.TotalSensors)
	}
	if last.RelErrorPercent >= first.RelErrorPercent {
		t.Errorf("error did not shrink across sweep: %.3f%% → %.3f%%",
			first.RelErrorPercent, last.RelErrorPercent)
	}
	if first.RelErrorPercent > 1.0 {
		t.Errorf("relative error at smallest λ = %.3f%%, paper reports < 1%%", first.RelErrorPercent)
	}
}

func TestFigure1NormsBimodal(t *testing.T) {
	p := quick(t)
	d, err := p.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", d.Render())
	for li, l := range d.Lambdas {
		sel := map[int]bool{}
		for _, s := range d.Selected[li] {
			sel[s] = true
		}
		if len(sel) == 0 {
			t.Fatalf("λ=%v selected nothing", l)
		}
		// Selected norms must clear T with margin; rejected norms must sit
		// well below it (the paper's 1e-5..1e-10 cloud).
		for m, n := range d.Norms[li] {
			if sel[m] {
				if n < 5*d.Threshold {
					t.Errorf("λ=%v: selected candidate %d has marginal norm %v", l, m, n)
				}
			} else if n > d.Threshold {
				t.Errorf("λ=%v: rejected candidate %d has norm %v above T", l, m, n)
			}
		}
	}
	// More budget → more sensors (λ=10 vs λ=30).
	if len(d.Selected[1]) <= len(d.Selected[0]) {
		t.Errorf("λ=30 selected %d sensors, λ=10 selected %d; want growth",
			len(d.Selected[1]), len(d.Selected[0]))
	}
}

func TestFigure2PredictionTracksReality(t *testing.T) {
	p := quick(t)
	// Block 14 of core 0 is alu0 — an execution block with real noise.
	d, err := p.Figure2(0, 14, 150)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", d.Render())
	if len(d.Real) != 150 {
		t.Fatalf("trace length %d", len(d.Real))
	}
	e2, e7 := d.MaxAbsError(2), d.MaxAbsError(7)
	if math.IsNaN(e2) || math.IsNaN(e7) {
		t.Fatal("missing predicted traces")
	}
	// Paper: error small and shrinking with more sensors.
	if e7 > e2*1.15 {
		t.Errorf("7-sensor error %v not better than 2-sensor %v", e7, e2)
	}
	if rms := d.RMSError(2); rms > 0.02 {
		t.Errorf("2-sensor RMS trace error %v V, paper shows ≪ 0.02 V", rms)
	}
}

func TestFigure3PlacementCharacter(t *testing.T) {
	p := quick(t)
	d, err := p.Figure3(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", d.Render(p))
	if len(d.Proposed) != 7 || len(d.EagleEye) != 7 {
		t.Fatalf("placed %d/%d sensors, want 7/7", len(d.Proposed), len(d.EagleEye))
	}
	// The paper's qualitative claim: the proposed approach spreads sensors
	// over more functional units than Eagle-Eye, which clusters at the
	// worst-noise unit.
	if len(d.ProposedByUnit) < len(d.EagleByUnit) {
		t.Errorf("proposed covers %d units, Eagle-Eye %d; expected at least as many",
			len(d.ProposedByUnit), len(d.EagleByUnit))
	}
}

func TestTable2ProposedHalvesMissError(t *testing.T) {
	p := quick(t)
	d, err := p.Table2(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", d.Render())
	if len(d.Rows) != 19 {
		t.Fatalf("rows = %d, want 19 benchmarks", len(d.Rows))
	}
	eagle, prop := d.MeanRates()
	t.Logf("means: eagle ME=%.4f WAE=%.4f TE=%.4f | proposed ME=%.4f WAE=%.4f TE=%.4f",
		eagle[0], eagle[1], eagle[2], prop[0], prop[1], prop[2])
	// Paper headline: proposed cuts ME and TE roughly in half.
	if prop[0] >= eagle[0] {
		t.Errorf("proposed mean ME %.4f not below Eagle-Eye %.4f", prop[0], eagle[0])
	}
	if prop[2] >= eagle[2] {
		t.Errorf("proposed mean TE %.4f not below Eagle-Eye %.4f", prop[2], eagle[2])
	}
	// WAE stays small for both (paper: < 1e-3 typical, always ≪ ME).
	if prop[1] > 0.05 || eagle[1] > 0.05 {
		t.Errorf("wrong-alarm rates too large: eagle %.4f, proposed %.4f", eagle[1], prop[1])
	}
}

func TestFigure4MoreSensorsHelp(t *testing.T) {
	p := quick(t)
	// bodytrack: the quick pipeline's busiest benchmark for emergencies.
	d, err := p.Figure4(1, 1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", d.Render())
	if len(d.Points) != 3 {
		t.Fatalf("points = %d", len(d.Points))
	}
	first, last := d.Points[0], d.Points[len(d.Points)-1]
	if last.TotalSensors <= first.TotalSensors {
		t.Fatal("sweep did not grow the budget")
	}
	if last.Proposed.TE > first.Proposed.TE {
		t.Errorf("proposed TE grew with more sensors: %.4f → %.4f", first.Proposed.TE, last.Proposed.TE)
	}
	// At the largest budget the proposed approach must win on TE (the
	// paper's ≥ 50-sensor regime).
	if last.Proposed.TE >= last.EagleEye.TE {
		t.Errorf("at %d sensors proposed TE %.4f not below Eagle-Eye %.4f",
			last.TotalSensors, last.Proposed.TE, last.EagleEye.TE)
	}
}

func TestAblationGLDirectBias(t *testing.T) {
	p := quick(t)
	d, err := p.AblationGLDirect(10)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("λ=%g: GL-direct rel err %.5f vs OLS refit %.5f (%d sensors)",
		d.Lambda, d.RelErrGL, d.RelErrRefit, d.SensorsCore0)
	if d.RelErrRefit >= d.RelErrGL {
		t.Errorf("OLS refit %.5f not better than biased GL-direct %.5f", d.RelErrRefit, d.RelErrGL)
	}
}

func TestRendersNonEmpty(t *testing.T) {
	p := quick(t)
	d1, err := p.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d1.CSV(), "candidate") {
		t.Error("Fig1 CSV missing header")
	}
	t1, err := p.Table1([]float64{10})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t1.CSV(), "lambda") {
		t.Error("Table1 CSV missing header")
	}
}
