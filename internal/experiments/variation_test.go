package experiments

import "testing"

func TestAblationProcessVariation(t *testing.T) {
	p := quick(t)
	d, err := p.AblationProcessVariation(2, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("nominal : rel err %.5f, %v", d.NominalRelErr, d.NominalRates)
	t.Logf("varied  : rel err %.5f, %v", d.VariedRelErr, d.VariedRates)
	t.Logf("recal   : rel err %.5f, %v", d.RecalRelErr, d.RecalRates)

	// Variation must hurt the nominal-trained model...
	if d.VariedRelErr <= d.NominalRelErr {
		t.Errorf("variation did not increase error: %.5f vs %.5f", d.VariedRelErr, d.NominalRelErr)
	}
	// ...and post-silicon recalibration (same sensors, refit coefficients)
	// must recover most of it.
	if d.RecalRelErr >= d.VariedRelErr {
		t.Errorf("recalibration did not help: %.5f vs %.5f", d.RecalRelErr, d.VariedRelErr)
	}
	if d.RecalRelErr > 3*d.NominalRelErr {
		t.Errorf("recalibrated error %.5f far above nominal %.5f; placement may not transfer",
			d.RecalRelErr, d.NominalRelErr)
	}
}

func TestAblationProcessVariationBadSigma(t *testing.T) {
	p := quick(t)
	if _, err := p.AblationProcessVariation(2, 0); err == nil {
		t.Fatal("expected error for zero sigma")
	}
}
