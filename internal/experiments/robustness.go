package experiments

import (
	"fmt"
	"strings"

	"voltsense/internal/detect"
	"voltsense/internal/mat"
	"voltsense/internal/sensor"
)

// SensorPoint is one sensor-quality setting of the robustness sweep.
type SensorPoint struct {
	Label      string
	Bits       int     // 0 = no quantization
	NoiseSigma float64 // volts
	Calibrated bool    // static offset/gain removed at production test
	RelError   float64 // prediction error with imperfect readings
	Rates      detect.Rates
}

// SensorRobustness is the sweep result plus the ideal baseline.
type SensorRobustness struct {
	SensorsPerCore int
	Ideal          SensorPoint
	Points         []SensorPoint
}

// AblationSensorRobustness studies how the paper's ideal-sensor assumption
// degrades under realistic instrumentation: the trained model is kept
// (calibration data is clean, as in design-time simulation) while the
// held-out readings pass through imperfect sensors — fabrication spread,
// thermal noise and ADC quantization — before prediction and detection.
func (p *Pipeline) AblationSensorRobustness(q int, points []sensor.Model) (*SensorRobustness, error) {
	_, union, err := p.ChipPlacementCount(q)
	if err != nil {
		return nil, err
	}
	pred, err := p.BuildChipPredictor(union)
	if err != nil {
		return nil, err
	}
	test := p.TestAll()
	truth := detect.TruthFromVoltages(test.CritV, p.Cfg.Vth)
	ideal := p.PredictTest(pred, test)

	out := &SensorRobustness{SensorsPerCore: q}
	out.Ideal = SensorPoint{
		Label:    "ideal",
		RelError: relErr(ideal, test.CritV),
		Rates:    detect.Score(truth, detect.AlarmsFromPredictions(ideal, p.Cfg.Vth)),
	}

	if points == nil {
		points = DefaultSensorSweep()
	}
	sensorRows := test.CandV.SelectRows(union)
	for i, base := range points {
		arr, err := sensor.NewArray(len(union), base, sensor.Variation{OffsetSigma: 0.002, GainSigma: 0.005},
			p.Cfg.Seed+int64(1000+i))
		if err != nil {
			return nil, fmt.Errorf("experiments: sensor sweep point %d: %w", i, err)
		}
		calibrated := base.Offset == 0 && base.Gain == 1
		if calibrated {
			// Keep the variation-sampled offsets to model residual spread,
			// unless this point models post-calibration sensors.
			arr.Calibrate()
		}
		// Pass every test reading through the array.
		noisy := mat.Zeros(sensorRows.Rows(), sensorRows.Cols())
		for j := 0; j < sensorRows.Cols(); j++ {
			noisy.SetCol(j, arr.ReadAll(sensorRows.Col(j)))
		}
		predicted := pred.Model.PredictMatrix(noisy)
		pt := SensorPoint{
			Label:      labelFor(base, calibrated),
			Bits:       base.Bits,
			NoiseSigma: base.NoiseSigma,
			Calibrated: calibrated,
			RelError:   relErr(predicted, test.CritV),
			Rates:      detect.Score(truth, detect.AlarmsFromPredictions(predicted, p.Cfg.Vth)),
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// DefaultSensorSweep covers the realistic design space: 6-12 bit ADCs on a
// 0.5-1.1 V range, with and without a 2 mV noise floor. (Points leave
// Offset/Gain ideal so fabrication spread is removed by calibration; the
// array still samples residual variation before Calibrate.)
func DefaultSensorSweep() []sensor.Model {
	mk := func(bits int, noise float64) sensor.Model {
		return sensor.Model{Gain: 1, Bits: bits, NoiseSigma: noise, FullScaleL: 0.5, FullScaleH: 1.1}
	}
	return []sensor.Model{
		mk(12, 0),
		mk(10, 0),
		mk(8, 0),
		mk(6, 0),
		mk(10, 0.002),
		mk(8, 0.002),
		mk(8, 0.005),
	}
}

func labelFor(m sensor.Model, calibrated bool) string {
	parts := []string{}
	if m.Bits > 0 {
		parts = append(parts, fmt.Sprintf("%d-bit", m.Bits))
	}
	if m.NoiseSigma > 0 {
		parts = append(parts, fmt.Sprintf("%.0fmV noise", m.NoiseSigma*1000))
	}
	if !calibrated {
		parts = append(parts, "uncalibrated")
	}
	if len(parts) == 0 {
		return "ideal"
	}
	return strings.Join(parts, ", ")
}

// Render formats the sweep.
func (s *SensorRobustness) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sensor robustness at %d sensors/core\n", s.SensorsPerCore)
	fmt.Fprintf(&b, "%-24s %12s %8s %8s %8s\n", "sensor", "rel err(%)", "ME", "WAE", "TE")
	row := func(pt SensorPoint) {
		fmt.Fprintf(&b, "%-24s %12.4f %8.4f %8.4f %8.4f\n",
			pt.Label, 100*pt.RelError, pt.Rates.ME, pt.Rates.WAE, pt.Rates.TE)
	}
	row(s.Ideal)
	for _, pt := range s.Points {
		row(pt)
	}
	return b.String()
}
