package experiments

import (
	"testing"

	"voltsense/internal/floorplan"
	"voltsense/internal/grid"
	"voltsense/internal/mat"
	"voltsense/internal/pdn"
)

// tinyConfig is the smallest pipeline that exercises every stage.
func tinyConfig() Config {
	cfg := QuickConfig()
	cfg.Grid.NX, cfg.Grid.NY = 26, 12
	cfg.Warmup = 30
	cfg.TrainSteps = 120
	cfg.TrainMaps = 380
	cfg.TestSteps = 30
	cfg.TestStride = 2
	cfg.CalibSteps = 60
	cfg.GLSampleCap = 300
	return cfg
}

func TestPipelineDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg1 := tinyConfig()
	cfg1.Workers = 1
	cfg3 := tinyConfig()
	cfg3.Workers = 3

	p1, err := New(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := New(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	for b := range p1.CritNodes {
		if p1.CritNodes[b] != p3.CritNodes[b] {
			t.Fatalf("critical node %d differs: %d vs %d", b, p1.CritNodes[b], p3.CritNodes[b])
		}
	}
	if !mat.Equalish(p1.Train.CandV, p3.Train.CandV, 0) {
		t.Fatal("training candidate matrices differ across worker counts")
	}
	if !mat.Equalish(p1.Train.CritV, p3.Train.CritV, 0) {
		t.Fatal("training critical matrices differ across worker counts")
	}
	for bi := range p1.TestByBench {
		if !mat.Equalish(p1.TestByBench[bi].CandV, p3.TestByBench[bi].CandV, 0) {
			t.Fatalf("test set %d differs across worker counts", bi)
		}
	}
}

func TestPipelineSampleSetShapes(t *testing.T) {
	p, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Train.CandV.Rows() != len(p.Grid.Candidates) {
		t.Errorf("CandV rows %d != candidates %d", p.Train.CandV.Rows(), len(p.Grid.Candidates))
	}
	if p.Train.CritV.Rows() != p.Chip.NumBlocks() {
		t.Errorf("CritV rows %d != blocks %d", p.Train.CritV.Rows(), p.Chip.NumBlocks())
	}
	perBench := 380 / 19
	if want := perBench * 19; p.Train.N() != want {
		t.Errorf("train N = %d, want %d", p.Train.N(), want)
	}
	if len(p.Train.Bench) != p.Train.N() {
		t.Error("Bench labels length mismatch")
	}
	for bi, s := range p.TestByBench {
		if s.N() != 30 {
			t.Errorf("test set %d has %d samples", bi, s.N())
		}
		for _, b := range s.Bench {
			if b != bi {
				t.Errorf("test set %d mislabeled with bench %d", bi, b)
			}
		}
	}
	all := p.TestAll()
	if all.N() != 19*30 {
		t.Errorf("pooled test N = %d", all.N())
	}
}

func TestCriticalNodesInsideTheirBlocks(t *testing.T) {
	p, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for b, nd := range p.CritNodes {
		found := false
		for _, own := range p.Grid.BlockNodes[b] {
			if own == nd {
				found = true
			}
		}
		if !found {
			t.Fatalf("critical node %d of block %d is not one of the block's nodes", nd, b)
		}
	}
}

func TestCoreDatasetConsistency(t *testing.T) {
	p, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The tiny mesh is coarse; pick a core that actually has in-core
	// blank-area nodes.
	coreIdx := -1
	for c := range p.Chip.Cores {
		if len(p.Grid.CandidatesInCore(c)) > 0 {
			coreIdx = c
			break
		}
	}
	if coreIdx < 0 {
		t.Skip("tiny mesh has no in-core candidates")
	}
	ds, candIdx := p.CoreDataset(coreIdx, p.Train)
	if ds.X.Rows() != len(candIdx) {
		t.Fatalf("X rows %d != candidate indices %d", ds.X.Rows(), len(candIdx))
	}
	if ds.F.Rows() != 30 {
		t.Fatalf("F rows %d, want 30 blocks", ds.F.Rows())
	}
	// Row 0 of the core dataset must equal the corresponding global row.
	g := candIdx[0]
	for j := 0; j < 5; j++ {
		if ds.X.At(0, j) != p.Train.CandV.At(g, j) {
			t.Fatal("core dataset rows misaligned with global candidates")
		}
	}
}

func TestPipelineWithUarchSource(t *testing.T) {
	cfg := tinyConfig()
	cfg.TraceSource = TraceUarch
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frac := p.EmergencyFraction(p.Train)
	t.Logf("uarch-source emergency fraction: %.3f", frac)
	if frac <= 0 || frac >= 0.9 {
		t.Errorf("uarch source emergency fraction %.3f outside working band", frac)
	}
	// The two sources must produce different voltages (different physics
	// driving the same grid) but the same shapes.
	cfgM := tinyConfig()
	pm, err := New(cfgM)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Equalish(p.Train.CandV, pm.Train.CandV, 1e-12) {
		t.Error("uarch and markov sources produced identical training data")
	}
	if p.Train.N() != pm.Train.N() {
		t.Error("sources disagree on dataset shape")
	}
}

func TestPipelineWithThermalFeedback(t *testing.T) {
	cfg := tinyConfig()
	base, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ThermalFeedback = true
	hot, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Hotter silicon leaks more → larger currents → strictly deeper mean
	// droop than the isothermal run.
	meanOf := func(p *Pipeline) float64 {
		return mat.Mean(mat.RowMeans(p.Train.CritV))
	}
	mBase, mHot := meanOf(base), meanOf(hot)
	t.Logf("mean critical voltage: isothermal %.4f vs thermal feedback %.4f", mBase, mHot)
	if mHot >= mBase {
		t.Errorf("thermal feedback did not deepen droops: %.4f vs %.4f", mHot, mBase)
	}
	// The effect is a perturbation, not a regime change.
	if mBase-mHot > 0.05 {
		t.Errorf("thermal feedback moved mean voltage by %.4f V; implausibly large", mBase-mHot)
	}
}

func TestPipelineOnDifferentFloorplan(t *testing.T) {
	// Generality: the whole flow runs on a 4-core (2x2) chip with larger
	// cores, not just the default 8-core floorplan.
	cfg := QuickConfig()
	cfg.Chip.CoresX, cfg.Chip.CoresY = 2, 2
	cfg.Chip.CoreWidth, cfg.Chip.CoreHeight = 6.0, 5.0
	cfg.Grid.NX, cfg.Grid.NY = 40, 30
	cfg.Warmup = 40
	cfg.TrainSteps = 200
	cfg.TrainMaps = 950
	cfg.TestSteps = 40
	cfg.CalibSteps = 80
	cfg.GLSampleCap = 400
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Chip.Cores) != 4 || p.Chip.NumBlocks() != 120 {
		t.Fatalf("chip shape: %d cores, %d blocks", len(p.Chip.Cores), p.Chip.NumBlocks())
	}
	_, union, err := p.ChipPlacementCount(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(union) != 8 {
		t.Fatalf("placed %d sensors, want 8 (2 per core)", len(union))
	}
	pred, err := p.BuildChipPredictor(union)
	if err != nil {
		t.Fatal(err)
	}
	rel := p.RelErrorOn(pred, p.TestAll())
	t.Logf("4-core chip: rel err %.4f%%, emergency fraction %.3f",
		100*rel, p.EmergencyFraction(p.TestAll()))
	if rel > 0.02 {
		t.Errorf("relative error %.4f implausibly large on the 4-core chip", rel)
	}
}

func TestTraceSourceString(t *testing.T) {
	if TraceMarkov.String() != "markov" || TraceUarch.String() != "uarch" {
		t.Error("TraceSource names wrong")
	}
	if TraceSource(9).String() == "" {
		t.Error("unknown source should stringify")
	}
}

func TestConfigValidationErrors(t *testing.T) {
	cfg := tinyConfig()
	cfg.TrainMaps = 5 // < 19 benchmarks
	if _, err := New(cfg); err == nil {
		t.Error("expected error for too few training maps")
	}
	cfg = tinyConfig()
	cfg.TrainMaps = 100000 // more than steps available
	if _, err := New(cfg); err == nil {
		t.Error("expected error for more maps than steps")
	}
}

// TestBatchedCollectionBitwiseMatchesFanout pins the pipeline-level batching
// contract: with the sparse backend forced, collecting calibration, training
// and test traces through one lock-stepped multi-RHS BatchSimulator yields
// exactly the samples the per-benchmark simulator fan-out produces.
func TestBatchedCollectionBitwiseMatchesFanout(t *testing.T) {
	base := tinyConfig()
	base.Backend = pdn.Sparse
	base.CalibSteps = 40
	base.TrainSteps = 80
	base.TrainMaps = 190
	base.TestSteps = 15

	cfgOff := base
	cfgOff.BatchTraces = BatchOff
	cfgOn := base
	cfgOn.BatchTraces = BatchOn

	pOff, err := New(cfgOff)
	if err != nil {
		t.Fatal(err)
	}
	pOn, err := New(cfgOn)
	if err != nil {
		t.Fatal(err)
	}
	for b := range pOff.CritNodes {
		if pOff.CritNodes[b] != pOn.CritNodes[b] {
			t.Fatalf("critical node %d differs: fan-out %d, batched %d", b, pOff.CritNodes[b], pOn.CritNodes[b])
		}
	}
	if !mat.Equalish(pOff.Train.CandV, pOn.Train.CandV, 0) {
		t.Fatal("training candidate maps differ between batched and fan-out collection")
	}
	if !mat.Equalish(pOff.Train.CritV, pOn.Train.CritV, 0) {
		t.Fatal("training critical maps differ between batched and fan-out collection")
	}
	for bi := range pOff.TestByBench {
		if !mat.Equalish(pOff.TestByBench[bi].CandV, pOn.TestByBench[bi].CandV, 0) ||
			!mat.Equalish(pOff.TestByBench[bi].CritV, pOn.TestByBench[bi].CritV, 0) {
			t.Fatalf("test set %d differs between batched and fan-out collection", bi)
		}
	}
}

// TestUseBatchResolution pins the BatchAuto rule: batch exactly when the
// backend resolves to Sparse.
func TestUseBatchResolution(t *testing.T) {
	cfg := tinyConfig() // 26x12 mesh resolves to Banded under Auto
	p := &Pipeline{Cfg: cfg, Grid: grid.Build(floorplan.New(cfg.Chip), cfg.Grid)}
	if p.useBatch() {
		t.Fatal("BatchAuto batched on a banded-resolved mesh")
	}
	p.Cfg.Backend = pdn.Sparse
	if !p.useBatch() {
		t.Fatal("BatchAuto did not batch with the sparse backend forced")
	}
	p.Cfg.BatchTraces = BatchOff
	if p.useBatch() {
		t.Fatal("BatchOff ignored")
	}
	p.Cfg.Backend = pdn.Auto
	p.Cfg.BatchTraces = BatchOn
	if !p.useBatch() {
		t.Fatal("BatchOn ignored")
	}
}
