package experiments

import (
	"fmt"
	"strings"

	"voltsense/internal/core"
	"voltsense/internal/detect"
	"voltsense/internal/online"
)

// AdaptationResult is the online-recalibration ablation: a design-time model
// monitors a die whose grid electricals drifted (the process-variation
// perturbation reused as a drift injector), first statically and then with
// the internal/online shadow-refit loop fed the drifted die's labeled
// samples. It answers the deployment question the serving tier's /v1/feedback
// endpoint exists for: does streaming recalibration recover what drift cost?
type AdaptationResult struct {
	SegRSigma      float64
	SensorsPerCore int
	Sensors        int

	FeedbackSamples int
	Promotions      int
	PromotedAt      int // 1-based sample index of the first promotion; 0 = never
	FinalVersion    int
	DriftScore      float64 // residual z-score at the end of the feed

	// Nominal die, nominal-trained model: the floor everything is judged
	// against.
	BaselineRelErr float64
	Baseline       detect.Rates
	// Drifted die, static nominal-trained model: deploy-and-forget.
	DriftedRelErr float64
	Drifted       detect.Rates
	// Drifted die, the adapter's live model after the feedback feed.
	AdaptedRelErr float64
	Adapted       detect.Rates
}

// RecoveredTE reports the fraction of the drift-induced TE gap the adapted
// model closed: 1 is full recovery to the undrifted baseline, 0 is none.
func (r *AdaptationResult) RecoveredTE() float64 {
	gap := r.Drifted.TE - r.Baseline.TE
	if gap <= 0 {
		return 1
	}
	return (r.Drifted.TE - r.Adapted.TE) / gap
}

// AblationOnlineAdaptation places q sensors per core and fits the Eq. 17
// model on the nominal die, then replays the drifted die's training run
// through an online.Adapter as labeled feedback — exactly the sample stream
// POST /v1/feedback would carry. acfg tunes the loop; zero fields get
// defaults scaled to the feed length, and a zero Vth inherits the pipeline's
// emergency threshold. All three models are scored on the drifted die's
// held-out run (the baseline additionally on the nominal one).
func (p *Pipeline) AblationOnlineAdaptation(q int, sigma float64, acfg online.Config) (*AdaptationResult, error) {
	if sigma <= 0 {
		return nil, fmt.Errorf("experiments: adaptation sigma %v must be positive", sigma)
	}
	_, union, err := p.ChipPlacementCount(q)
	if err != nil {
		return nil, err
	}
	pred, err := p.BuildChipPredictor(union)
	if err != nil {
		return nil, err
	}
	// Stamp the design-time lineage: the adapter anchors its drift detector
	// on the fit-time residual statistics instead of assuming the feedback
	// stream starts healthy.
	train := &core.Dataset{X: p.Train.CandV, F: p.Train.CritV}
	residMean, residStd := pred.FitResidualStats(train)
	pred.Lineage = &core.Lineage{
		Version: 1, Source: core.LineageSourceTrain, Samples: train.X.Cols(),
		ResidMean: residMean, ResidStd: residStd,
	}

	// The drifted die: identical geometry, perturbed electricals — the same
	// construction as AblationProcessVariation, so the two studies describe
	// the same deployment scenario with and without the feedback loop.
	cfg := p.Cfg
	cfg.Grid.SegRSigma = sigma
	cfg.Grid.PadRSigma = sigma / 2
	cfg.Grid.VariationSeed = p.Cfg.Seed + 77
	drifted, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: building drifted die: %w", err)
	}
	driftedTest := p.resampleOnNodes(drifted, p.CritNodes)
	feed := p.resampleTrainOnNodes(drifted, p.CritNodes)
	n := feed.N()

	if acfg.Vth == 0 {
		acfg.Vth = p.Cfg.Vth
	}
	if acfg.EvalWindow == 0 {
		acfg.EvalWindow = clampInt(n/8, 32, 256)
	}
	if acfg.MinSamples == 0 {
		acfg.MinSamples = acfg.EvalWindow
	}
	if acfg.DriftWindow == 0 {
		acfg.DriftWindow = clampInt(n/16, 16, 64)
	}

	out := &AdaptationResult{
		SegRSigma:      sigma,
		SensorsPerCore: q,
		Sensors:        len(union),
	}
	nomTest := p.TestAll()
	out.BaselineRelErr = p.RelErrorOn(pred, nomTest)
	out.Baseline = scoreSet(pred, nomTest, p.Cfg.Vth)
	out.DriftedRelErr = p.RelErrorOn(pred, driftedTest)
	out.Drifted = scoreSet(pred, driftedTest, p.Cfg.Vth)

	a, err := online.NewAdapter(pred, acfg, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: adaptation loop: %w", err)
	}
	x := make([]float64, len(union))
	f := make([]float64, feed.CritV.Rows())
	for j := 0; j < n; j++ {
		for i, g := range union {
			x[i] = feed.CandV.At(g, j)
		}
		for i := range f {
			f[i] = feed.CritV.At(i, j)
		}
		res, err := a.Ingest(x, f)
		if err != nil {
			return nil, fmt.Errorf("experiments: feedback sample %d: %w", j, err)
		}
		if res.Promoted != nil {
			out.Promotions++
			if out.PromotedAt == 0 {
				out.PromotedAt = j + 1
			}
		}
	}
	st := a.Status()
	out.FeedbackSamples = n
	out.FinalVersion = st.Version
	out.DriftScore = st.DriftScore

	adapted := a.Live()
	out.AdaptedRelErr = p.RelErrorOn(adapted, driftedTest)
	out.Adapted = scoreSet(adapted, driftedTest, p.Cfg.Vth)
	return out, nil
}

// Render formats the ablation as a table plus a promotion summary line.
func (r *AdaptationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "online adaptation under grid drift (σ=%.2f, %d sensors/core, %d sensors)\n",
		r.SegRSigma, r.SensorsPerCore, r.Sensors)
	fmt.Fprintf(&b, "%-18s %10s | %8s %8s %8s\n", "model", "rel err(%)", "ME", "WAE", "TE")
	fmt.Fprintf(&b, "%-18s %10.4f | %8.4f %8.4f %8.4f\n",
		"baseline", 100*r.BaselineRelErr, r.Baseline.ME, r.Baseline.WAE, r.Baseline.TE)
	fmt.Fprintf(&b, "%-18s %10.4f | %8.4f %8.4f %8.4f\n",
		"drifted (static)", 100*r.DriftedRelErr, r.Drifted.ME, r.Drifted.WAE, r.Drifted.TE)
	fmt.Fprintf(&b, "%-18s %10.4f | %8.4f %8.4f %8.4f\n",
		"adapted (online)", 100*r.AdaptedRelErr, r.Adapted.ME, r.Adapted.WAE, r.Adapted.TE)
	if r.Promotions > 0 {
		fmt.Fprintf(&b, "promoted at sample %d of %d (%d promotion(s), final version %d); TE gap recovered %.1f%%\n",
			r.PromotedAt, r.FeedbackSamples, r.Promotions, r.FinalVersion, 100*r.RecoveredTE())
	} else {
		fmt.Fprintf(&b, "no promotion in %d feedback samples (final version %d, drift z=%.1f)\n",
			r.FeedbackSamples, r.FinalVersion, r.DriftScore)
	}
	return b.String()
}

// CSV emits the ablation for plotting, one row per model stage.
func (r *AdaptationResult) CSV() string {
	var b strings.Builder
	fmt.Fprintln(&b, "stage,rel_err,me,wae,te,promotions,promoted_at,feedback_samples")
	row := func(stage string, rel float64, d detect.Rates) {
		fmt.Fprintf(&b, "%s,%.6f,%.6f,%.6f,%.6f,%d,%d,%d\n",
			stage, rel, d.ME, d.WAE, d.TE, r.Promotions, r.PromotedAt, r.FeedbackSamples)
	}
	row("baseline", r.BaselineRelErr, r.Baseline)
	row("drifted", r.DriftedRelErr, r.Drifted)
	row("adapted", r.AdaptedRelErr, r.Adapted)
	return b.String()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
