package experiments

import (
	"strings"
	"testing"

	"voltsense/internal/place"
)

// TestCriteriaShootoutRanksAllMethods runs the full parallel shootout — all
// seven criteria concurrently on one shared problem, plus the mixed-class
// row — on the shared quick pipeline. Run with -race to exercise the
// concurrent Select path.
func TestCriteriaShootoutRanksAllMethods(t *testing.T) {
	p := quick(t)
	const q = 6
	spec := place.DefaultClassSpec
	d, err := p.CriteriaShootout(q, nil, spec, float64(q)*spec.RefCost)
	if err != nil {
		t.Fatal(err)
	}
	want := len(place.Names()) + 1 // + mixed
	if len(d.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(d.Rows), want)
	}
	seen := map[string]bool{}
	for _, r := range d.Rows {
		seen[r.Criterion] = true
		if r.Criterion == MixedLabel {
			if r.Cost > d.Budget {
				t.Errorf("mixed cost %g exceeds budget %g", r.Cost, d.Budget)
			}
			if r.RefCount+r.LowCount != r.Sensors {
				t.Errorf("mixed class counts %d+%d != %d sensors", r.RefCount, r.LowCount, r.Sensors)
			}
		} else if r.Sensors != q {
			t.Errorf("%s placed %d sensors, want %d", r.Criterion, r.Sensors, q)
		}
		if r.RelErr <= 0 || r.RelErr > 0.5 {
			t.Errorf("%s rel err %g implausible", r.Criterion, r.RelErr)
		}
		if r.Rates.TE < 0 || r.Rates.TE > 1 {
			t.Errorf("%s TE %g out of [0,1]", r.Criterion, r.Rates.TE)
		}
	}
	for _, name := range place.Names() {
		if !seen[name] {
			t.Errorf("criterion %s missing from shootout", name)
		}
	}
	// Ranking invariant: total error non-decreasing down the table (best
	// detector first).
	for i := 1; i < len(d.Rows); i++ {
		if d.Rows[i].Rates.TE < d.Rows[i-1].Rates.TE-1e-12 {
			t.Errorf("rows not ranked by TE: %g after %g", d.Rows[i].Rates.TE, d.Rows[i-1].Rates.TE)
		}
	}
	// The acceptance bound the docs quote: every NEW criterion's total error
	// within 15% of the group-lasso baseline's at equal sensor count.
	// Eagle-Eye is exempt — it is the paper's known-worse comparison
	// baseline, kept in the table for that comparison, and its coverage
	// heuristic drifts well outside the bound at larger sensor counts.
	base := d.Baseline()
	if base == nil {
		t.Fatal("group-lasso baseline missing")
	}
	for _, r := range d.Rows {
		if r.Criterion == "eagleeye" {
			continue
		}
		if r.Rates.TE > 1.15*base.Rates.TE {
			t.Errorf("%s TE %.4f above 115%% of group-lasso baseline %.4f", r.Criterion, r.Rates.TE, base.Rates.TE)
		}
	}
	// Render and CSV agree on the row set.
	rendered := d.Render()
	csv := d.CSV()
	for _, r := range d.Rows {
		if !strings.Contains(rendered, r.Criterion) || !strings.Contains(csv, r.Criterion) {
			t.Errorf("row %s missing from rendered output", r.Criterion)
		}
	}
	if testing.Verbose() {
		t.Log("\n" + rendered)
	}
}

func TestCriteriaShootoutValidation(t *testing.T) {
	p := quick(t)
	if _, err := p.CriteriaShootout(0, nil, place.DefaultClassSpec, 0); err == nil {
		t.Error("zero sensor count accepted")
	}
	if _, err := p.CriteriaShootout(4, []string{"bogus"}, place.DefaultClassSpec, 0); err == nil {
		t.Error("unknown criterion accepted")
	}
	// budget 0 skips the mixed row.
	d, err := p.CriteriaShootout(4, []string{"qrpivot"}, place.DefaultClassSpec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 1 || d.Rows[0].Criterion != "qrpivot" {
		t.Errorf("criteria subset not honored: %+v", d.Rows)
	}
}
