package experiments

import (
	"fmt"
	"sync"
	"testing"

	"voltsense/internal/core"
)

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPathPlacementMatchesColdPlaceSensors pins the tentpole equivalence at
// the pipeline level: the warm-started, screened path placements must select
// exactly the sensors an independent cold core.PlaceSensors solve picks for
// every (core, λ) cell of the sweep.
func TestPathPlacementMatchesColdPlaceSensors(t *testing.T) {
	p, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	lambdas := []float64{4, 2}
	byLambda, err := p.ChipPlacementPath(lambdas)
	if err != nil {
		t.Fatal(err)
	}
	// Mirror corePath's solver headroom so the cold reference optimizes the
	// same problem to the same tolerance.
	opts := p.Cfg.Solver
	if opts.MaxIter < 3000 {
		opts.MaxIter = 3000
	}
	for li, l := range lambdas {
		for c := range p.Chip.Cores {
			ds, candIdx := p.glTrainDataset(c)
			cold, err := core.PlaceSensors(ds, core.Config{
				Lambda:    l,
				Threshold: p.Cfg.Threshold,
				Solver:    opts,
			})
			if err != nil {
				t.Fatalf("cold core %d λ=%g: %v", c, l, err)
			}
			got := byLambda[li][c]
			if !intsEqual(got.LocalIdx, cold.Selected) {
				t.Errorf("core %d λ=%g: path selected %v, cold selected %v",
					c, l, got.LocalIdx, cold.Selected)
			}
			if !intsEqual(got.CandIdx, mapIdx(candIdx, cold.Selected)) {
				t.Errorf("core %d λ=%g: global index mismatch", c, l)
			}
		}
	}
}

// TestConcurrentPlacementConsistent hammers the placement cache and the
// per-core path solvers from many goroutines mixing λ- and count-targeted
// queries, then checks every answer against a serially computed pipeline.
// Selections must be identical; run it under -race to certify the locking.
func TestConcurrentPlacementConsistent(t *testing.T) {
	serial, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	conc, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	lambdas := []float64{2, 4}
	counts := []int{2, 3}

	type query struct {
		core    int
		byCount bool
		lambda  float64
		count   int
	}
	var queries []query
	for c := range serial.Chip.Cores {
		// The tiny grid leaves some cores without blank-area candidates;
		// those cannot host sensors at all.
		if len(serial.Grid.CandidatesInCore(c)) < 3 {
			continue
		}
		for _, l := range lambdas {
			queries = append(queries, query{core: c, lambda: l})
		}
		for _, q := range counts {
			queries = append(queries, query{core: c, byCount: true, count: q})
		}
	}
	want := make(map[string][]int)
	for _, q := range queries {
		var pl *CorePlacement
		var err error
		if q.byCount {
			pl, err = serial.PlaceCoreCount(q.core, q.count)
		} else {
			pl, err = serial.PlaceCore(q.core, q.lambda)
		}
		if err != nil {
			t.Fatalf("serial %+v: %v", q, err)
		}
		want[fmt.Sprintf("%+v", q)] = pl.CandIdx
	}

	// Each query twice, all at once: exercises concurrent cache misses on
	// the same key as well as cross-key contention on one core's solver.
	var wg sync.WaitGroup
	errCh := make(chan error, 2*len(queries))
	for rep := 0; rep < 2; rep++ {
		for _, q := range queries {
			wg.Add(1)
			go func(q query) {
				defer wg.Done()
				var pl *CorePlacement
				var err error
				if q.byCount {
					pl, err = conc.PlaceCoreCount(q.core, q.count)
				} else {
					pl, err = conc.PlaceCore(q.core, q.lambda)
				}
				if err != nil {
					errCh <- fmt.Errorf("concurrent %+v: %w", q, err)
					return
				}
				if !intsEqual(pl.CandIdx, want[fmt.Sprintf("%+v", q)]) {
					errCh <- fmt.Errorf("concurrent %+v selected %v, serial %v",
						q, pl.CandIdx, want[fmt.Sprintf("%+v", q)])
				}
			}(q)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
