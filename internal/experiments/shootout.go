package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"voltsense/internal/basis"
	"voltsense/internal/core"
	"voltsense/internal/detect"
	"voltsense/internal/place"
)

// This file hosts the placement-criteria shootout: every registered
// criterion (internal/place) plus the budget-constrained mixed-class
// placement run against the same chip-joint problem, refit, and ranked on
// held-out detection quality and placement wall-clock. It is the
// experimental backbone of DESIGN.md §13's "which criterion should I use"
// matrix.

// MixedLabel names the heterogeneous-class row of the shootout table.
const MixedLabel = "mixed"

// ShootoutRow is one criterion's result: q sensors placed by that criterion
// on the chip-joint training set, refit dense, scored on the pooled held-out
// maps. The mixed row instead spends a cost budget across reference and
// low-cost devices and refits with per-class GLS weighting.
type ShootoutRow struct {
	Criterion string
	Sensors   int
	RefCount  int // reference-class sensors (mixed row; == Sensors elsewhere)
	LowCount  int // low-cost-class sensors (mixed row; 0 elsewhere)
	Cost      float64
	Place     time.Duration // wall-clock of the selection itself
	RelErr    float64       // relative prediction error on held-out maps
	Rates     detect.Rates  // chip-level ME/WAE/TE on held-out maps
	Selected  []int
}

// ShootoutData is the ranked table: rows sorted by total error ascending
// (best detector first), ties broken by relative error ascending.
type ShootoutData struct {
	Q          int             // homogeneous sensor budget
	Rank       int             // candidate POD basis rank the basis-driven criteria used
	Budget     float64         // cost budget of the mixed row
	Spec       place.ClassSpec // pricing of the mixed row
	Candidates int
	Targets    int
	Rows       []ShootoutRow
}

// CriteriaShootout runs every named criterion on one shared chip-joint
// placement problem — one standardization + candidate POD fit, q sensors
// each — plus, when budget > 0, the mixed-class placement under spec. All
// criteria run concurrently (Select never mutates the shared Problem).
// Homogeneous selections are refit with the paper's dense OLS so the
// comparison isolates the selection; the mixed row uses the GLS refit its
// per-class noise model requires. Passing criteria == nil runs place.Names().
func (p *Pipeline) CriteriaShootout(q int, criteria []string, spec place.ClassSpec, budget float64) (*ShootoutData, error) {
	if criteria == nil {
		criteria = place.Names()
	}
	ds := p.chipTrainDataset()
	if q < 1 || q > ds.X.Rows() {
		return nil, fmt.Errorf("experiments: shootout sensor count %d out of range 1..%d", q, ds.X.Rows())
	}
	// Rank-q candidate basis: the PySensors convention (r = q) that makes the
	// selected rows square for coefficient recovery, and the floor the
	// budgeted mixed placement is guaranteed to cover.
	cc := core.CriterionConfig{
		Basis:     basis.Config{Rank: q},
		Vth:       p.Cfg.Vth,
		Threshold: p.threshold(),
		Solver:    p.Cfg.Solver,
	}
	prob, err := core.NewPlacementProblem(ds, cc)
	if err != nil {
		return nil, err
	}
	full := &core.Dataset{X: p.Train.CandV, F: p.Train.CritV}
	test := p.TestAll()
	truth := detect.TruthFromVoltages(test.CritV, p.Cfg.Vth)

	d := &ShootoutData{
		Q: q, Rank: prob.Rank(), Budget: budget, Spec: spec,
		Candidates: prob.Candidates(), Targets: ds.F.Rows(),
	}
	score := func(row *ShootoutRow, pred *core.Predictor) {
		row.RelErr = p.RelErrorOn(pred, test)
		row.Rates = detect.Score(truth, detect.AlarmsFromPredictions(p.PredictTest(pred, test), p.Cfg.Vth))
	}

	rows := make([]ShootoutRow, len(criteria))
	errs := make([]error, len(criteria))
	var wg sync.WaitGroup
	for i, name := range criteria {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			crit, err := place.ParseCriterion(name)
			if err != nil {
				errs[i] = err
				return
			}
			start := time.Now()
			sel, err := crit.Select(prob, q)
			elapsed := time.Since(start)
			if err != nil {
				errs[i] = fmt.Errorf("experiments: %s: %w", name, err)
				return
			}
			rows[i] = ShootoutRow{
				Criterion: crit.Name(), Sensors: len(sel), RefCount: len(sel),
				Place: elapsed, Selected: sel,
			}
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Refits run sequentially: BuildPredictor parallelizes internally, and the
	// selections above are where the wall-clock comparison lives.
	for i := range rows {
		pred, err := core.BuildPredictor(full, rows[i].Selected)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s refit: %w", rows[i].Criterion, err)
		}
		score(&rows[i], pred)
		d.Rows = append(d.Rows, rows[i])
	}

	if budget > 0 {
		start := time.Now()
		mp, err := place.PlaceMixed(prob, spec, budget)
		elapsed := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("experiments: mixed placement: %w", err)
		}
		pred, err := core.BuildGLSPredictor(prob, mp.Selected, mp.NoiseVariances(spec))
		if err != nil {
			return nil, fmt.Errorf("experiments: mixed GLS refit: %w", err)
		}
		ref, low := mp.CountByClass()
		row := ShootoutRow{
			Criterion: MixedLabel, Sensors: len(mp.Selected),
			RefCount: ref, LowCount: low, Cost: mp.Cost,
			Place: elapsed, Selected: mp.Selected,
		}
		score(&row, pred)
		d.Rows = append(d.Rows, row)
	}

	sort.SliceStable(d.Rows, func(a, b int) bool {
		ra, rb := d.Rows[a], d.Rows[b]
		if ra.Rates.TE != rb.Rates.TE {
			return ra.Rates.TE < rb.Rates.TE
		}
		return ra.RelErr < rb.RelErr
	})
	return d, nil
}

// Baseline returns the group-lasso row — the paper's own method, the yard
// stick the acceptance bound (every criterion's total error within 15% of
// the baseline's, i.e. TE ≤ 1.15× grouplasso's) is measured against — or
// nil if it was not part of the run.
func (d *ShootoutData) Baseline() *ShootoutRow {
	for i := range d.Rows {
		if d.Rows[i].Criterion == "grouplasso" {
			return &d.Rows[i]
		}
	}
	return nil
}

// Render formats the ranked shootout as a fixed-width table.
func (d *ShootoutData) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "placement criteria shootout: %d sensors (basis rank %d), %d candidates, %d critical nodes\n",
		d.Q, d.Rank, d.Candidates, d.Targets)
	if d.Budget > 0 {
		fmt.Fprintf(&b, "mixed row: cost budget %g (reference cost %g var %g, low-cost cost %g var %g)\n",
			d.Budget, d.Spec.RefCost, d.Spec.RefVar, d.Spec.LowCostCost, d.Spec.LowCostVar)
	}
	fmt.Fprintf(&b, "%-12s %8s %11s %10s %11s %8s %8s %8s\n",
		"criterion", "sensors", "ref/low", "place", "rel err(%)", "ME", "WAE", "TE")
	for _, r := range d.Rows {
		classes := fmt.Sprintf("%d/%d", r.RefCount, r.LowCount)
		fmt.Fprintf(&b, "%-12s %8d %11s %10s %11.3f %8.4f %8.4f %8.4f\n",
			r.Criterion, r.Sensors, classes, r.Place.Round(time.Millisecond),
			100*r.RelErr, r.Rates.ME, r.Rates.WAE, r.Rates.TE)
	}
	return b.String()
}

// CSV emits the ranked shootout as comma-separated rows.
func (d *ShootoutData) CSV() string {
	var b strings.Builder
	b.WriteString("criterion,sensors,ref,lowcost,cost,place_ms,rel_err_pct,me,wae,te\n")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%.1f,%.2f,%.4f,%.4f,%.4f,%.4f\n",
			r.Criterion, r.Sensors, r.RefCount, r.LowCount, r.Cost,
			float64(r.Place.Microseconds())/1000, 100*r.RelErr, r.Rates.ME, r.Rates.WAE, r.Rates.TE)
	}
	return b.String()
}
