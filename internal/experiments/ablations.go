package experiments

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"voltsense/internal/core"
	"voltsense/internal/lasso"
	"voltsense/internal/mat"
	"voltsense/internal/ols"
)

// SelectionComparison scores one alternative selection strategy against the
// paper's group-lasso choice at the same sensor count, on core 0 held-out
// data.
type SelectionComparison struct {
	Strategy    string
	Q           int     // sensors compared
	RelErrGL    float64 // group-lasso selection + OLS refit
	RelErrAlt   float64 // alternative selection + OLS refit
	OverlapsGL  int     // sensors shared with the GL selection
	AltSelected []int   // local candidate indices of the alternative
}

// AblationOLSMagnitude evaluates the "intuitive idea" the paper's Section
// 2.2 dismisses: fit the full OLS model of Eq. 7 over every candidate and
// keep the q candidates with the largest coefficient-column norms.
func (p *Pipeline) AblationOLSMagnitude(q int) (*SelectionComparison, error) {
	ds, _ := p.glTrainDataset(0)
	if q < 1 || q > ds.X.Rows() {
		return nil, fmt.Errorf("experiments: bad q=%d for %d candidates", q, ds.X.Rows())
	}
	full, err := ols.Fit(ds.X, ds.F)
	if err != nil {
		// Neighboring mesh candidates can be nearly collinear, making the
		// all-candidate OLS of Eq. 7 rank-deficient — itself evidence for
		// the paper's point. Ridge-regularize minimally by dropping to the
		// penalized group solver with a tiny μ to get usable magnitudes.
		r, lerr := lasso.SolvePenalized(standardizeX(ds.X), standardizeF(ds.F), 1e-6,
			lasso.Options{MaxIter: 3000, Tol: 1e-8})
		if lerr != nil && !errors.Is(lerr, lasso.ErrDidNotConverge) {
			return nil, fmt.Errorf("experiments: OLS-magnitude fallback: %w", lerr)
		}
		return p.finishComparison("ols-magnitude", q, topQ(r.GroupNorms, q))
	}
	norms := make([]float64, full.Alpha.Cols())
	for i := 0; i < full.Alpha.Rows(); i++ {
		row := full.Alpha.Row(i)
		for j, v := range row {
			norms[j] += v * v
		}
	}
	for j := range norms {
		norms[j] = math.Sqrt(norms[j])
	}
	_ = err
	return p.finishComparison("ols-magnitude", q, topQ(norms, q))
}

// AblationPlainLasso evaluates non-grouped selection: run an independent
// lasso per output (K = 1 group lasso) and take the q candidates appearing
// in the most per-output supports — what one would do without the grouping
// insight.
func (p *Pipeline) AblationPlainLasso(q int) (*SelectionComparison, error) {
	ds, _ := p.glTrainDataset(0)
	if q < 1 || q > ds.X.Rows() {
		return nil, fmt.Errorf("experiments: bad q=%d for %d candidates", q, ds.X.Rows())
	}
	z := standardizeX(ds.X)
	g := standardizeF(ds.F)
	votes := make([]float64, ds.X.Rows())
	opts := lasso.Options{MaxIter: 2000, Tol: 1e-6}
	for k := 0; k < g.Rows(); k++ {
		gk := g.SelectRows([]int{k})
		// A per-output μ sized to pick a handful of features.
		r, _, err := lasso.SolvePenalizedForBudget(z, gk, 2, 0.05, opts)
		if err != nil && !errors.Is(err, lasso.ErrDidNotConverge) {
			return nil, fmt.Errorf("experiments: plain lasso output %d: %w", k, err)
		}
		for _, m := range r.Select(p.Cfg.Threshold) {
			votes[m] += 1 + r.GroupNorms[m] // count + strength tie-break
		}
	}
	return p.finishComparison("plain-lasso", q, topQ(votes, q))
}

// finishComparison builds OLS refits for both the GL selection and the
// alternative at count q and scores them on core-0 held-out data.
func (p *Pipeline) finishComparison(name string, q int, alt []int) (*SelectionComparison, error) {
	glPl, err := p.PlaceCoreCount(0, q)
	if err != nil {
		return nil, err
	}
	trainDS, _ := p.CoreDataset(0, p.Train)
	testDS, _ := p.CoreDataset(0, p.TestAll())

	score := func(sel []int) (float64, error) {
		pred, err := core.BuildPredictor(trainDS, sel)
		if err != nil {
			return 0, err
		}
		return ols.RelativeError(pred.PredictDataset(testDS), testDS.F), nil
	}
	glErr, err := score(glPl.LocalIdx)
	if err != nil {
		return nil, err
	}
	altErr, err := score(alt)
	if err != nil {
		return nil, err
	}
	glSet := map[int]bool{}
	for _, s := range glPl.LocalIdx {
		glSet[s] = true
	}
	overlap := 0
	for _, s := range alt {
		if glSet[s] {
			overlap++
		}
	}
	return &SelectionComparison{
		Strategy: name, Q: q,
		RelErrGL: glErr, RelErrAlt: altErr,
		OverlapsGL: overlap, AltSelected: alt,
	}, nil
}

// AblationPCA evaluates an unsupervised alternative: eigendecompose the
// candidate covariance and, for each of the top q principal components,
// keep the candidate with the largest loading. PCA sees only where the
// *candidate* field varies — not which candidates explain the *function
// area* — so it is the natural "information-less" strawman for the
// supervised group-lasso selection.
func (p *Pipeline) AblationPCA(q int) (*SelectionComparison, error) {
	ds, _ := p.glTrainDataset(0)
	if q < 1 || q > ds.X.Rows() {
		return nil, fmt.Errorf("experiments: bad q=%d for %d candidates", q, ds.X.Rows())
	}
	z := standardizeX(ds.X)
	n := float64(z.Cols())
	cov := mat.Scale(1/n, mat.MulT(z, z))
	eig, err := mat.FactorSymEigen(cov)
	if err != nil {
		return nil, fmt.Errorf("experiments: PCA: %w", err)
	}
	used := map[int]bool{}
	var sel []int
	for comp := 0; comp < cov.Rows() && len(sel) < q; comp++ {
		vec := eig.Vectors.Col(comp)
		best, bestA := -1, -1.0
		for m, v := range vec {
			if used[m] {
				continue
			}
			if a := math.Abs(v); a > bestA {
				best, bestA = m, a
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		sel = append(sel, best)
	}
	sort.Ints(sel)
	return p.finishComparison("pca", q, sel)
}

// FASensorResult quantifies the paper's closing remark: letting sensors sit
// inside the function area (here: directly at critical nodes) improves
// prediction further.
type FASensorResult struct {
	Q            int
	RelErrBAOnly float64 // sensors restricted to the blank area (the paper's setting)
	RelErrWithFA float64 // critical nodes admitted as candidate sites
	FASelected   int     // how many of the chosen sensors are FA nodes
}

// AblationSensorsInFA re-runs core-0 placement with the core's critical
// nodes added to the candidate pool.
func (p *Pipeline) AblationSensorsInFA(q int) (*FASensorResult, error) {
	ds, _ := p.glTrainDataset(0)
	if q < 1 {
		return nil, fmt.Errorf("experiments: bad q=%d", q)
	}
	ba, err := p.PlaceCoreCount(0, q)
	if err != nil {
		return nil, err
	}
	trainDS, _ := p.CoreDataset(0, p.Train)
	testDS, _ := p.CoreDataset(0, p.TestAll())
	baPred, err := core.BuildPredictor(trainDS, ba.LocalIdx)
	if err != nil {
		return nil, err
	}
	baErr := ols.RelativeError(baPred.PredictDataset(testDS), testDS.F)

	// Extended pool: BA candidates followed by the core's critical nodes.
	mBA := ds.X.Rows()
	extGL := stackRows(ds.X, ds.F)
	extTrain := stackRows(trainDS.X, trainDS.F)
	extTest := stackRows(testDS.X, testDS.F)
	sel, err := placeCount(extGL, ds.F, q, p.Cfg.Threshold, p.Cfg.Solver)
	if err != nil {
		return nil, err
	}
	extPred, err := core.BuildPredictor(&core.Dataset{X: extTrain, F: trainDS.F}, sel)
	if err != nil {
		return nil, err
	}
	extErr := ols.RelativeError(extPred.PredictDataset(&core.Dataset{X: extTest, F: testDS.F}), testDS.F)

	fa := 0
	for _, s := range sel {
		if s >= mBA {
			fa++
		}
	}
	return &FASensorResult{Q: q, RelErrBAOnly: baErr, RelErrWithFA: extErr, FASelected: fa}, nil
}

// placeCount is a standalone count-targeted group-lasso selection over an
// arbitrary candidate matrix (the pipeline method is bound to per-core BA
// pools).
func placeCount(x, f *mat.Matrix, q int, threshold float64, opts lasso.Options) ([]int, error) {
	z := standardizeX(x)
	g := standardizeF(f)
	muMax := 0.0
	k := g.Rows()
	u := make([]float64, k)
	for j := 0; j < z.Rows(); j++ {
		zj := z.Row(j)
		for i := 0; i < k; i++ {
			u[i] = mat.Dot(g.Row(i), zj)
		}
		if n := mat.Norm2(u); n > muMax {
			muMax = n
		}
	}
	if opts.MaxIter < 3000 {
		opts.MaxIter = 3000
	}
	lo, hi := 0.0, muMax
	var best *lasso.Result
	bestCount := -1
	for it := 0; it < 40; it++ {
		mu := (lo + hi) / 2
		r, err := lasso.SolvePenalized(z, g, mu, opts)
		if err != nil && !errors.Is(err, lasso.ErrDidNotConverge) {
			return nil, err
		}
		n := len(r.Select(threshold))
		if n >= q && (bestCount < 0 || n < bestCount) {
			best, bestCount = r, n
		}
		if n == q {
			break
		}
		if n > q {
			lo = mu
		} else {
			hi = mu
		}
	}
	if best == nil {
		return nil, errors.New("experiments: count targeting failed")
	}
	sel := best.Select(threshold)
	if len(sel) > q {
		sort.Slice(sel, func(a, b int) bool { return best.GroupNorms[sel[a]] > best.GroupNorms[sel[b]] })
		sel = sel[:q]
		sort.Ints(sel)
	}
	return sel, nil
}

func standardizeX(x *mat.Matrix) *mat.Matrix {
	z, _ := mat.Standardize(x)
	return z
}

func standardizeF(f *mat.Matrix) *mat.Matrix {
	g, _ := mat.Standardize(f)
	return g
}

// stackRows concatenates the rows of a and b into one matrix (same column
// count).
func stackRows(a, b *mat.Matrix) *mat.Matrix {
	if a.Cols() != b.Cols() {
		panic(fmt.Sprintf("experiments: stackRows columns %d vs %d", a.Cols(), b.Cols()))
	}
	out := mat.Zeros(a.Rows()+b.Rows(), a.Cols())
	for i := 0; i < a.Rows(); i++ {
		copy(out.Row(i), a.Row(i))
	}
	for i := 0; i < b.Rows(); i++ {
		copy(out.Row(a.Rows()+i), b.Row(i))
	}
	return out
}

// topQ returns the indices of the q largest scores, ascending by index.
func topQ(scores []float64, q int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	out := make([]int, q)
	copy(out, idx[:q])
	sort.Ints(out)
	return out
}
