package experiments

import (
	"strings"
	"testing"

	"voltsense/internal/online"
)

// TestAblationOnlineAdaptation is the PR's acceptance experiment: grid drift
// must degrade the static model's total error, and replaying the drifted
// die's labeled samples through the online loop must promote a shadow refit
// that recovers detection to near the undrifted baseline.
func TestAblationOnlineAdaptation(t *testing.T) {
	p := quick(t)
	r, err := p.AblationOnlineAdaptation(2, 0.15, online.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline: rel err %.5f, %v", r.BaselineRelErr, r.Baseline)
	t.Logf("drifted : rel err %.5f, %v", r.DriftedRelErr, r.Drifted)
	t.Logf("adapted : rel err %.5f, %v (promoted at %d/%d, %d promotions)",
		r.AdaptedRelErr, r.Adapted, r.PromotedAt, r.FeedbackSamples, r.Promotions)

	if r.DriftedRelErr <= r.BaselineRelErr {
		t.Errorf("drift did not increase error: %.5f vs %.5f", r.DriftedRelErr, r.BaselineRelErr)
	}
	if r.Drifted.TE <= r.Baseline.TE {
		t.Errorf("drift did not degrade TE: %.5f vs %.5f", r.Drifted.TE, r.Baseline.TE)
	}
	if r.Promotions == 0 {
		t.Fatal("online loop never promoted under sustained drift")
	}
	if r.FinalVersion < 2 {
		t.Errorf("final version %d after %d promotions", r.FinalVersion, r.Promotions)
	}
	// The acceptance bound: the adapted model's TE must land within 10% of
	// the drift-induced gap above the undrifted baseline.
	limit := r.Baseline.TE + 0.10*(r.Drifted.TE-r.Baseline.TE)
	if r.Adapted.TE > limit {
		t.Errorf("adapted TE %.5f above recovery limit %.5f (baseline %.5f, drifted %.5f)",
			r.Adapted.TE, limit, r.Baseline.TE, r.Drifted.TE)
	}
	if r.AdaptedRelErr >= r.DriftedRelErr {
		t.Errorf("adaptation did not reduce error: %.5f vs %.5f", r.AdaptedRelErr, r.DriftedRelErr)
	}

	rendered := r.Render()
	for _, want := range []string{"baseline", "drifted (static)", "adapted (online)", "promoted at sample"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("render missing %q:\n%s", want, rendered)
		}
	}
	csv := r.CSV()
	if lines := strings.Split(strings.TrimSpace(csv), "\n"); len(lines) != 4 {
		t.Errorf("CSV should have header + 3 stages:\n%s", csv)
	}
}

func TestAblationOnlineAdaptationBadSigma(t *testing.T) {
	p := quick(t)
	if _, err := p.AblationOnlineAdaptation(2, 0, online.Config{}); err == nil {
		t.Fatal("expected error for zero sigma")
	}
}
