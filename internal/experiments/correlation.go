package experiments

import (
	"fmt"
	"math"
	"strings"

	"voltsense/internal/detect"
	"voltsense/internal/mat"
)

// CorrProfile is the empirical premise check behind the whole methodology
// (the paper's citation [13]): supply noise at nearby nodes is strongly
// correlated, and the correlation decays with distance. Bin b covers
// distances [b·BinMM, (b+1)·BinMM).
type CorrProfile struct {
	BinMM    float64
	MeanCorr []float64 // mean |correlation| per distance bin
	Count    []int     // candidate-critical pairs per bin
}

// CorrelationProfile measures |corr(candidate, critical)| as a function of
// their die distance over the training samples, using every critical node
// against every candidate.
func (p *Pipeline) CorrelationProfile(binMM float64) (*CorrProfile, error) {
	if binMM <= 0 {
		return nil, fmt.Errorf("experiments: bin width %v must be positive", binMM)
	}
	maxDist := math.Hypot(p.Chip.Width, p.Chip.Height)
	nBins := int(maxDist/binMM) + 1
	prof := &CorrProfile{
		BinMM:    binMM,
		MeanCorr: make([]float64, nBins),
		Count:    make([]int, nBins),
	}
	for b, critNode := range p.CritNodes {
		cx, cy := p.Grid.NodePos(critNode)
		fRow := p.Train.CritV.Row(b)
		for ci, candNode := range p.Grid.Candidates {
			x, y := p.Grid.NodePos(candNode)
			d := math.Hypot(x-cx, y-cy)
			bin := int(d / binMM)
			c := math.Abs(mat.Correlation(p.Train.CandV.Row(ci), fRow))
			prof.MeanCorr[bin] += c
			prof.Count[bin]++
		}
	}
	for i := range prof.MeanCorr {
		if prof.Count[i] > 0 {
			prof.MeanCorr[i] /= float64(prof.Count[i])
		}
	}
	// Trim empty tail bins.
	last := len(prof.Count) - 1
	for last > 0 && prof.Count[last] == 0 {
		last--
	}
	prof.MeanCorr = prof.MeanCorr[:last+1]
	prof.Count = prof.Count[:last+1]
	return prof, nil
}

// Render draws the profile as a text bar chart.
func (c *CorrProfile) Render() string {
	var b strings.Builder
	b.WriteString("mean |corr(candidate, critical)| vs distance\n")
	for i, v := range c.MeanCorr {
		if c.Count[i] == 0 {
			continue
		}
		bars := int(v * 50)
		fmt.Fprintf(&b, "%5.1f-%5.1f mm %s %.3f (n=%d)\n",
			float64(i)*c.BinMM, float64(i+1)*c.BinMM, strings.Repeat("#", bars), v, c.Count[i])
	}
	return b.String()
}

// CSV emits the profile series.
func (c *CorrProfile) CSV() string {
	var b strings.Builder
	b.WriteString("dist_lo_mm,dist_hi_mm,mean_abs_corr,pairs\n")
	for i, v := range c.MeanCorr {
		fmt.Fprintf(&b, "%.2f,%.2f,%.4f,%d\n",
			float64(i)*c.BinMM, float64(i+1)*c.BinMM, v, c.Count[i])
	}
	return b.String()
}

// PerBlockRates is the finer-grained detection accounting extension: rates
// computed over (sample, block) pairs instead of whole-chip samples.
type PerBlockRates struct {
	SensorsPerCore int
	ChipLevel      detect.Rates // the paper's accounting, pooled test set
	PerBlock       detect.Rates // (sample, block) accounting
}

// Table2PerBlock computes the per-block extension of Table 2 on the pooled
// held-out set at q sensors per core.
func (p *Pipeline) Table2PerBlock(q int) (*PerBlockRates, error) {
	_, union, err := p.ChipPlacementCount(q)
	if err != nil {
		return nil, err
	}
	pred, err := p.BuildChipPredictor(union)
	if err != nil {
		return nil, err
	}
	test := p.TestAll()
	predicted := p.PredictTest(pred, test)
	truth := detect.TruthFromVoltages(test.CritV, p.Cfg.Vth)
	return &PerBlockRates{
		SensorsPerCore: q,
		ChipLevel:      detect.Score(truth, detect.AlarmsFromPredictions(predicted, p.Cfg.Vth)),
		PerBlock:       detect.ScorePerBlock(test.CritV, predicted, p.Cfg.Vth),
	}, nil
}
