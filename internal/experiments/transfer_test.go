package experiments

import (
	"strings"
	"testing"

	"voltsense/internal/transfer"
)

// TestAblationTransfer is the fleet-calibration acceptance experiment: with
// a handful of labeled samples (≤32), alignment against the golden prior
// must beat fitting from scratch AND recover most of the TE gap between
// prior-only serving and a full per-chip training campaign.
func TestAblationTransfer(t *testing.T) {
	p := quick(t)
	r, err := p.AblationTransfer(2, 0.15, 2, []int{4, 8, 16, 32}, transfer.AlignConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("prior only: rel err %.5f, %v", r.PriorRelErr, r.Prior)
	t.Logf("full (%d) : rel err %.5f, %v", r.FeedSamples, r.FullRelErr, r.Full)
	for i := range r.Points {
		pt := &r.Points[i]
		t.Logf("n=%2d aligned: rel %.5f TE %.5f | scratch: rel %.5f TE %.5f | recovered %.2f nnz %d",
			pt.Samples, pt.AlignedRelErr, pt.Aligned.TE, pt.ScratchRelErr, pt.Scratch.TE,
			r.Recovered(pt), pt.DeltaNNZ)
	}

	if len(r.Points) == 0 {
		t.Fatal("sweep produced no points")
	}
	// Drift must make prior-only serving worse than the fielded chip's own
	// full fit, or the experiment measures nothing.
	if r.Prior.TE <= r.Full.TE {
		t.Fatalf("prior-only TE %.5f not above full-campaign TE %.5f", r.Prior.TE, r.Full.TE)
	}
	// The headline claims, at every sampled budget up to 32:
	// aligned beats scratch, and by 32 samples ≥80%% of the gap is closed.
	var at32 *TransferPoint
	for i := range r.Points {
		pt := &r.Points[i]
		if pt.Samples <= 32 && pt.Aligned.TE > pt.Scratch.TE {
			t.Errorf("n=%d: aligned TE %.5f worse than scratch TE %.5f", pt.Samples, pt.Aligned.TE, pt.Scratch.TE)
		}
		if pt.Samples == 32 || (at32 == nil && pt.Samples > 32) {
			at32 = pt
		}
		if pt.DeltaNNZ == 0 && !isPriorOnlyBudget(pt.Samples) {
			t.Errorf("n=%d: alignment moved but stored an empty delta", pt.Samples)
		}
	}
	if at32 == nil {
		at32 = &r.Points[len(r.Points)-1]
	}
	if rec := r.Recovered(at32); rec < 0.80 {
		t.Errorf("n=%d recovered only %.1f%% of the prior→full TE gap, want ≥80%%", at32.Samples, 100*rec)
	}

	rendered := r.Render()
	for _, want := range []string{"prior only", "aligned (", "scratch (", "full campaign"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("render missing %q:\n%s", want, rendered)
		}
	}
	csv := r.CSV()
	if lines := strings.Split(strings.TrimSpace(csv), "\n"); len(lines) != 1+len(r.Points) {
		t.Errorf("CSV should have header + %d points:\n%s", len(r.Points), csv)
	}
}

// isPriorOnlyBudget mirrors the default transfer.AlignConfig evidence gate.
func isPriorOnlyBudget(n int) bool { return n < 4 }

func TestAblationTransferBadSigma(t *testing.T) {
	p := quick(t)
	if _, err := p.AblationTransfer(2, 0, 2, nil, transfer.AlignConfig{}); err == nil {
		t.Fatal("expected error for zero sigma")
	}
}
