package power

import (
	"math"
	"testing"

	"voltsense/internal/floorplan"
	"voltsense/internal/workload"
)

func testSetup(t *testing.T, steps int) (*floorplan.Chip, *Model, *CurrentTrace) {
	t.Helper()
	chip := floorplan.New(floorplan.DefaultConfig())
	m := DefaultModel(chip)
	tr := workload.Generate(chip, workload.Benchmarks()[0], steps, 0)
	return chip, m, m.Currents(tr)
}

func TestDefaultModelCoversAllBlocks(t *testing.T) {
	chip := floorplan.New(floorplan.DefaultConfig())
	m := DefaultModel(chip)
	for _, b := range chip.Blocks {
		if m.Dynamic[b.ID] <= 0 {
			t.Fatalf("block %s has dynamic power %v", b.Name, m.Dynamic[b.ID])
		}
		if m.Leakage[b.ID] <= 0 || m.Leakage[b.ID] >= m.Dynamic[b.ID] {
			t.Fatalf("block %s leakage %v vs dynamic %v implausible", b.Name, m.Leakage[b.ID], m.Dynamic[b.ID])
		}
	}
}

func TestPeakCoreCurrentPlausible(t *testing.T) {
	chip := floorplan.New(floorplan.DefaultConfig())
	m := DefaultModel(chip)
	peak := m.PeakCoreCurrent(chip)
	// A 2.5 GHz Xeon-class core at 1.0 V peaks in the 15-35 W range.
	if peak < 15 || peak > 35 {
		t.Fatalf("peak core current = %v A, want 15-35 A at 1 V", peak)
	}
}

func TestCurrentsNonNegativeAndBounded(t *testing.T) {
	chip, m, ct := testSetup(t, 500)
	for b, row := range ct.Currents {
		limit := (m.Dynamic[b] + m.Leakage[b]) / m.VDD
		for step, i := range row {
			if i < 0 || math.IsNaN(i) {
				t.Fatalf("current[%d][%d] = %v negative or NaN", b, step, i)
			}
			if i > limit+1e-12 {
				t.Fatalf("current[%d][%d] = %v exceeds full scale %v", b, step, i, limit)
			}
		}
	}
	_ = chip
}

func TestSlewLimitEnforced(t *testing.T) {
	chip, m, ct := testSetup(t, 2000)
	_ = chip
	for b, row := range ct.Currents {
		fullScale := (m.Dynamic[b] + m.Leakage[b]) / m.VDD
		maxDelta := fullScale/float64(m.SlewSteps) + 1e-12
		for step := 1; step < len(row); step++ {
			if d := math.Abs(row[step] - row[step-1]); d > maxDelta {
				t.Fatalf("block %d current slew %v at step %d exceeds limit %v", b, d, step, maxDelta)
			}
		}
	}
}

func TestGatedBlockFallsToZero(t *testing.T) {
	chip := floorplan.New(floorplan.DefaultConfig())
	m := DefaultModel(chip)
	// Hand-build a trace: block 0 active then gated long enough for the
	// slew limiter to reach zero.
	nb := chip.NumBlocks()
	steps := 20
	tr := &workload.Trace{Benchmark: "synthetic", Steps: steps,
		Activity: make([][]float64, nb), Gated: make([][]bool, nb)}
	for b := 0; b < nb; b++ {
		tr.Activity[b] = make([]float64, steps)
		tr.Gated[b] = make([]bool, steps)
	}
	for s := 0; s < 10; s++ {
		tr.Activity[0][s] = 1.0
	}
	for s := 10; s < steps; s++ {
		tr.Gated[0][s] = true
	}
	ct := m.Currents(tr)
	if ct.Currents[0][9] < m.Dynamic[0]*0.9 {
		t.Fatalf("active current %v too low", ct.Currents[0][9])
	}
	if got := ct.Currents[0][steps-1]; got != 0 {
		t.Fatalf("gated current settled at %v, want 0", got)
	}
	// The drop must take at least SlewSteps steps.
	if ct.Currents[0][10] == 0 {
		t.Fatal("current dropped to zero instantly despite slew limiter")
	}
}

func TestUngatedIdleDrawsLeakage(t *testing.T) {
	chip := floorplan.New(floorplan.DefaultConfig())
	m := DefaultModel(chip)
	nb := chip.NumBlocks()
	tr := &workload.Trace{Benchmark: "idle", Steps: 10,
		Activity: make([][]float64, nb), Gated: make([][]bool, nb)}
	for b := 0; b < nb; b++ {
		tr.Activity[b] = make([]float64, 10)
		tr.Gated[b] = make([]bool, 10)
	}
	ct := m.Currents(tr)
	for b := 0; b < nb; b++ {
		want := m.Leakage[b] / m.VDD
		if got := ct.Currents[b][9]; math.Abs(got-want) > 1e-12 {
			t.Fatalf("idle block %d current %v, want leakage %v", b, got, want)
		}
	}
}

func TestTotalPower(t *testing.T) {
	_, m, ct := testSetup(t, 100)
	p := ct.TotalPower(m.VDD, 50)
	// 8 cores, mid-activity: tens of watts, far below 8 * peak.
	chip := floorplan.New(floorplan.DefaultConfig())
	peak := m.PeakCoreCurrent(chip) * m.VDD * float64(len(chip.Cores))
	if p <= 0 || p > peak {
		t.Fatalf("total power = %v, want (0, %v]", p, peak)
	}
}

func TestCurrentsPanicsOnBlockMismatch(t *testing.T) {
	chip := floorplan.New(floorplan.DefaultConfig())
	m := DefaultModel(chip)
	tr := &workload.Trace{Steps: 1, Activity: make([][]float64, 3), Gated: make([][]bool, 3)}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Currents(tr)
}
