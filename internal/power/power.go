// Package power is the reproduction's stand-in for McPAT: it converts
// per-block activity traces into per-block power and supply-current
// waveforms at a 22 nm-class operating point (VDD = 1.0 V), with power
// gating folded in.
//
// Dynamic power is proportional to switching activity; leakage is drawn
// whenever the block is not power-gated; gating transitions are slew-limited
// so current steps ramp over a few simulation steps, as real gating
// controllers enforce (di/dt control), rather than instantaneously.
package power

import (
	"fmt"

	"voltsense/internal/floorplan"
	"voltsense/internal/workload"
)

// Model holds per-block electrical parameters.
type Model struct {
	VDD       float64   // supply voltage, volts
	Dynamic   []float64 // peak dynamic power per block at activity 1.0, watts
	Leakage   []float64 // leakage power per block when powered, watts
	SlewSteps int       // minimum steps for a full-scale current ramp (di/dt limit)
}

// peakDynamic gives the peak dynamic power (W) of each block type at full
// activity, loosely following McPAT's 22 nm breakdown of an aggressive OoO
// core (execution and L1s dominate; TLBs and queues are small).
var peakDynamic = map[string]float64{
	"fetch": 0.50, "branchpred": 0.40, "itlb": 0.15, "l1i": 0.85, "decode": 0.70, "rename": 0.60,
	"int_issueq": 0.70, "int_regfile": 0.95, "alu0": 0.85, "alu1": 0.85, "alu2": 0.60, "muldiv": 0.70,
	"fp_issueq": 0.60, "fp_regfile": 0.95, "fpu0": 1.45, "fpu1": 1.45, "agu0": 0.50, "rob": 0.80,
	"l1d_0": 0.75, "l1d_1": 0.75, "dtlb": 0.15, "lsu": 0.85, "loadq": 0.40, "storeq": 0.40,
	"l2_0": 0.60, "l2_1": 0.60, "l2_2": 0.60, "l2_3": 0.60, "prefetch": 0.30, "mshr": 0.25,
}

// leakageFraction is leakage relative to peak dynamic power; 22 nm designs
// with high-k metal gates run roughly 15-25%. SRAM-heavy blocks leak more.
func leakageFraction(name string) float64 {
	switch name {
	case "l1i", "l1d_0", "l1d_1", "l2_0", "l2_1", "l2_2", "l2_3":
		return 0.30
	default:
		return 0.18
	}
}

// DefaultModel builds the per-block model for chip at VDD = 1.0 V.
func DefaultModel(chip *floorplan.Chip) *Model {
	m := &Model{
		VDD:       1.0,
		Dynamic:   make([]float64, chip.NumBlocks()),
		Leakage:   make([]float64, chip.NumBlocks()),
		SlewSteps: 3,
	}
	for _, b := range chip.Blocks {
		pd, ok := peakDynamic[b.Name]
		if !ok {
			panic(fmt.Sprintf("power: no dynamic power entry for block %q", b.Name))
		}
		m.Dynamic[b.ID] = pd
		m.Leakage[b.ID] = pd * leakageFraction(b.Name)
	}
	return m
}

// CurrentTrace holds per-block supply-current waveforms in amps.
type CurrentTrace struct {
	Benchmark string
	Steps     int
	Currents  [][]float64 // [numBlocks][steps], amps drawn from the grid
}

// Currents converts an activity trace into block current waveforms.
//
// Instantaneous block power is activity*Dynamic + Leakage (leakage only when
// not gated); current is power/VDD, then slew-limited so no block's draw
// changes faster than its full-scale range divided by SlewSteps per step.
func (m *Model) Currents(tr *workload.Trace) *CurrentTrace {
	return m.CurrentsScaledLeakage(tr, nil)
}

// CurrentsScaledLeakage is Currents with a per-block leakage multiplier
// (nil means 1.0 everywhere), the hook the thermal feedback loop uses:
// hotter blocks leak more.
func (m *Model) CurrentsScaledLeakage(tr *workload.Trace, leakScale []float64) *CurrentTrace {
	nb := len(tr.Activity)
	if nb != len(m.Dynamic) {
		panic(fmt.Sprintf("power: trace has %d blocks, model has %d", nb, len(m.Dynamic)))
	}
	if leakScale != nil && len(leakScale) != nb {
		panic(fmt.Sprintf("power: %d leakage scales for %d blocks", len(leakScale), nb))
	}
	ct := &CurrentTrace{Benchmark: tr.Benchmark, Steps: tr.Steps, Currents: make([][]float64, nb)}
	for b := 0; b < nb; b++ {
		leak := m.Leakage[b]
		if leakScale != nil {
			leak *= leakScale[b]
		}
		row := make([]float64, tr.Steps)
		fullScale := (m.Dynamic[b] + leak) / m.VDD
		maxDelta := fullScale
		if m.SlewSteps > 1 {
			maxDelta = fullScale / float64(m.SlewSteps)
		}
		prev := leak / m.VDD // assume powered, idle at t<0
		for t := 0; t < tr.Steps; t++ {
			p := tr.Activity[b][t] * m.Dynamic[b]
			if !tr.Gated[b][t] {
				p += leak
			}
			want := p / m.VDD
			// Slew limiting.
			d := want - prev
			if d > maxDelta {
				want = prev + maxDelta
			} else if d < -maxDelta {
				want = prev - maxDelta
			}
			row[t] = want
			prev = want
		}
		ct.Currents[b] = row
	}
	return ct
}

// PeakCoreCurrent returns the worst-case current (amps) one core can draw,
// used when sizing the grid and pads.
func (m *Model) PeakCoreCurrent(chip *floorplan.Chip) float64 {
	if len(chip.Cores) == 0 {
		return 0
	}
	s := 0.0
	for _, b := range chip.Cores[0].Blocks {
		s += (m.Dynamic[b.ID] + m.Leakage[b.ID]) / m.VDD
	}
	return s
}

// TotalPower returns the chip power (watts) at step t of the trace.
func (ct *CurrentTrace) TotalPower(vdd float64, t int) float64 {
	s := 0.0
	for _, row := range ct.Currents {
		s += row[t] * vdd
	}
	return s
}
