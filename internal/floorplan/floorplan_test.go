package floorplan

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultChipShape(t *testing.T) {
	chip := New(DefaultConfig())
	if got := len(chip.Cores); got != 8 {
		t.Fatalf("cores = %d, want 8", got)
	}
	if got := chip.NumBlocks(); got != 8*BlocksPerCore {
		t.Fatalf("blocks = %d, want %d", got, 8*BlocksPerCore)
	}
	// 4 cores * 5mm + 3 gaps * 0.6mm + 2 margins * 0.8mm = 23.4mm wide.
	if math.Abs(chip.Width-23.4) > 1e-12 {
		t.Errorf("width = %v, want 23.4", chip.Width)
	}
	// 2 cores * 4mm + 1 gap * 0.6mm + 2 margins * 0.8mm = 10.2mm tall.
	if math.Abs(chip.Height-10.2) > 1e-12 {
		t.Errorf("height = %v, want 10.2", chip.Height)
	}
}

func TestBlockIDsDenseAndConsistent(t *testing.T) {
	chip := New(DefaultConfig())
	for i, b := range chip.Blocks {
		if b.ID != i {
			t.Fatalf("block %d has ID %d", i, b.ID)
		}
		if b.Core*BlocksPerCore+b.Local != b.ID {
			t.Fatalf("block %d: core %d local %d inconsistent", b.ID, b.Core, b.Local)
		}
		if chip.Cores[b.Core].Blocks[b.Local] != b {
			t.Fatalf("block %d not shared with its core", b.ID)
		}
	}
}

func TestBlocksDoNotOverlap(t *testing.T) {
	chip := New(DefaultConfig())
	for i, a := range chip.Blocks {
		for _, b := range chip.Blocks[i+1:] {
			if a.Bounds.X0 < b.Bounds.X1 && b.Bounds.X0 < a.Bounds.X1 &&
				a.Bounds.Y0 < b.Bounds.Y1 && b.Bounds.Y0 < a.Bounds.Y1 {
				t.Fatalf("blocks %s/%d and %s/%d overlap", a.Name, a.Core, b.Name, b.Core)
			}
		}
	}
}

func TestBlocksInsideTheirCore(t *testing.T) {
	chip := New(DefaultConfig())
	for _, core := range chip.Cores {
		for _, b := range core.Blocks {
			r, cb := b.Bounds, core.Bounds
			if r.X0 < cb.X0 || r.X1 > cb.X1 || r.Y0 < cb.Y0 || r.Y1 > cb.Y1 {
				t.Fatalf("block %s of core %d escapes core bounds", b.Name, core.Index)
			}
		}
	}
}

func TestBlockAtAgreesWithBounds(t *testing.T) {
	chip := New(DefaultConfig())
	for _, b := range chip.Blocks {
		cx, cy := b.Bounds.Center()
		got := chip.BlockAt(cx, cy)
		if got != b {
			t.Fatalf("BlockAt(center of %s/%d) = %v", b.Name, b.Core, got)
		}
	}
	// Chip corner is margin: blank area.
	if chip.BlockAt(0.01, 0.01) != nil {
		t.Error("chip margin should be blank area")
	}
	// Outside the chip entirely.
	if chip.BlockAt(-1, -1) != nil {
		t.Error("outside chip should be blank")
	}
}

// Property: BlockAt(x,y) returns b iff some block's Bounds contains (x,y),
// and InFA agrees.
func TestBlockAtMatchesLinearScan(t *testing.T) {
	chip := New(DefaultConfig())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := rng.Float64() * chip.Width
		y := rng.Float64() * chip.Height
		var want *Block
		for _, b := range chip.Blocks {
			if b.Bounds.Contains(x, y) {
				want = b
				break
			}
		}
		got := chip.BlockAt(x, y)
		return got == want && chip.InFA(x, y) == (want != nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFAFractionReasonable(t *testing.T) {
	chip := New(DefaultConfig())
	fa := chip.FAFraction()
	if fa < 0.35 || fa > 0.75 {
		t.Fatalf("FA fraction = %v, want mid-range so BA has room for sensors", fa)
	}
}

func TestUnitAssignmentsCoverAllUnits(t *testing.T) {
	chip := New(DefaultConfig())
	counts := make(map[Unit]int)
	for _, b := range chip.Cores[0].Blocks {
		counts[b.Unit]++
	}
	if counts[Execution] < 8 {
		t.Errorf("execution unit has %d blocks, want a dominant share like real cores", counts[Execution])
	}
	for u := Frontend; u < numUnits; u++ {
		if counts[u] == 0 {
			t.Errorf("unit %v has no blocks", u)
		}
	}
}

func TestUniqueBlockNamesWithinCore(t *testing.T) {
	chip := New(DefaultConfig())
	seen := map[string]bool{}
	for _, b := range chip.Cores[0].Blocks {
		if seen[b.Name] {
			t.Fatalf("duplicate block name %q", b.Name)
		}
		seen[b.Name] = true
	}
}

func TestCoreAt(t *testing.T) {
	chip := New(DefaultConfig())
	for _, core := range chip.Cores {
		cx, cy := core.Bounds.Center()
		if got := chip.CoreAt(cx, cy); got != core {
			t.Fatalf("CoreAt(center of %d) = %v", core.Index, got)
		}
	}
	if chip.CoreAt(0.01, 0.01) != nil {
		t.Error("margin should not belong to any core")
	}
}

func TestNearestBlock(t *testing.T) {
	chip := New(DefaultConfig())
	b0 := chip.Blocks[0]
	cx, cy := b0.Bounds.Center()
	got, d := chip.NearestBlock(cx, cy)
	if got != b0 || d != 0 {
		t.Fatalf("NearestBlock at a block center = %v (d=%v)", got, d)
	}
}

func TestRectHelpers(t *testing.T) {
	r := Rect{X0: 1, Y0: 2, X1: 4, Y1: 6}
	if r.Width() != 3 || r.Height() != 4 || r.Area() != 12 {
		t.Fatalf("rect helpers wrong: w=%v h=%v a=%v", r.Width(), r.Height(), r.Area())
	}
	if !r.Contains(1, 2) || r.Contains(4, 6) {
		t.Fatal("Contains should be inclusive-low, exclusive-high")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero cores")
		}
	}()
	New(Config{CoresX: 0, CoresY: 1, CoreWidth: 1, CoreHeight: 1})
}

func TestUnitString(t *testing.T) {
	if Frontend.String() != "frontend" || Execution.String() != "execution" {
		t.Error("Unit.String wrong")
	}
	if Unit(99).String() == "" {
		t.Error("unknown unit should still stringify")
	}
}
