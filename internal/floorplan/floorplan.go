// Package floorplan models the chip geometry the methodology runs on: an
// 8-core Xeon-E5-like multiprocessor with 30 microarchitectural function
// blocks per core.
//
// The chip is partitioned, exactly as in the paper, into a function area (FA:
// the union of the block rectangles, where supply noise matters but no sensor
// may be placed) and a blank area (BA: routing channels between blocks, the
// core periphery and the chip periphery, where sensor candidates live).
package floorplan

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle in millimetres: [X0,X1) x [Y0,Y1).
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// Contains reports whether point (x, y) lies inside the rectangle.
func (r Rect) Contains(x, y float64) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// Center returns the rectangle midpoint.
func (r Rect) Center() (float64, float64) {
	return (r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2
}

// Width returns X1-X0.
func (r Rect) Width() float64 { return r.X1 - r.X0 }

// Height returns Y1-Y0.
func (r Rect) Height() float64 { return r.Y1 - r.Y0 }

// Area returns the rectangle area in mm².
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Unit classifies the function blocks of a core into the functional groups
// the paper colors in its Figure 3.
type Unit int

// Functional units of a core.
const (
	Frontend  Unit = iota // fetch/decode/rename pipeline front
	Execution             // issue queues, register files, ALUs/FPUs (the paper's "blue unit")
	Memory                // load/store machinery and L1D
	Cache                 // L2 slice and prefetch/uncore-adjacent logic
	numUnits
)

// String returns the unit name.
func (u Unit) String() string {
	switch u {
	case Frontend:
		return "frontend"
	case Execution:
		return "execution"
	case Memory:
		return "memory"
	case Cache:
		return "cache"
	default:
		return fmt.Sprintf("Unit(%d)", int(u))
	}
}

// Block is one function block instance in one core.
type Block struct {
	ID     int    // global index across the chip, dense from 0
	Core   int    // owning core index
	Local  int    // index within the core, 0..BlocksPerCore-1
	Name   string // microarchitectural name, e.g. "alu0"
	Unit   Unit
	Bounds Rect
}

// BlocksPerCore is the number of function blocks in each core, matching the
// paper's experimental setup.
const BlocksPerCore = 30

// blockDef describes one of the 30 per-core blocks: its name, unit, and the
// (row, column, width-in-columns) cell it occupies in the core's 5x6 layout
// lattice. Rows run bottom (0) to top (4); the execution unit occupies the
// middle of the core, as in the die shots the paper's Figure 3 mimics.
type blockDef struct {
	name string
	unit Unit
}

// blockDefs lays the 30 blocks on a 5-row x 6-column lattice, row-major from
// bottom-left. Row 0: L2 slice across the bottom. Rows 1: memory subsystem.
// Rows 2-3: execution core. Row 4: frontend.
var blockDefs = [BlocksPerCore]blockDef{
	// Row 0 (bottom): cache slice.
	{"l2_0", Cache}, {"l2_1", Cache}, {"l2_2", Cache}, {"l2_3", Cache}, {"prefetch", Cache}, {"mshr", Cache},
	// Row 1: memory subsystem.
	{"l1d_0", Memory}, {"l1d_1", Memory}, {"dtlb", Memory}, {"lsu", Memory}, {"loadq", Memory}, {"storeq", Memory},
	// Row 2: integer execution.
	{"int_issueq", Execution}, {"int_regfile", Execution}, {"alu0", Execution}, {"alu1", Execution}, {"alu2", Execution}, {"muldiv", Execution},
	// Row 3: floating point + retire.
	{"fp_issueq", Execution}, {"fp_regfile", Execution}, {"fpu0", Execution}, {"fpu1", Execution}, {"agu0", Execution}, {"rob", Execution},
	// Row 4 (top): frontend.
	{"fetch", Frontend}, {"branchpred", Frontend}, {"itlb", Frontend}, {"l1i", Frontend}, {"decode", Frontend}, {"rename", Frontend},
}

// layoutRows and layoutCols define the per-core block lattice.
const (
	layoutRows = 5
	layoutCols = 6
)

// Config parameterizes chip construction. The zero value is not useful; use
// DefaultConfig as a starting point.
type Config struct {
	CoresX, CoresY float64 // core grid, e.g. 4 x 2
	CoreWidth      float64 // mm
	CoreHeight     float64 // mm
	CoreGap        float64 // mm of blank area between adjacent cores
	ChipMargin     float64 // mm of blank area around the core array
	BlockGapFrac   float64 // fraction of each lattice cell left blank around the block
}

// DefaultConfig returns the 8-core (4x2) chip used in the experiments:
// 5 mm x 4 mm cores with 0.6 mm channels, mimicking the paper's Xeon-E5-like
// testbed.
func DefaultConfig() Config {
	return Config{
		CoresX:       4,
		CoresY:       2,
		CoreWidth:    5.0,
		CoreHeight:   4.0,
		CoreGap:      0.6,
		ChipMargin:   0.8,
		BlockGapFrac: 0.12,
	}
}

// Core is one processor core: its bounding box and its 30 blocks.
type Core struct {
	Index  int
	Bounds Rect
	Blocks []*Block // BlocksPerCore entries, indexed by Local
}

// Chip is the full floorplan.
type Chip struct {
	Width, Height float64 // mm
	Cores         []*Core
	Blocks        []*Block // all blocks across all cores, indexed by ID
}

// New builds a chip floorplan from cfg. It validates the geometry and panics
// on non-positive dimensions (configuration is programmer-controlled).
func New(cfg Config) *Chip {
	nx, ny := int(cfg.CoresX), int(cfg.CoresY)
	if nx <= 0 || ny <= 0 || cfg.CoreWidth <= 0 || cfg.CoreHeight <= 0 {
		panic(fmt.Sprintf("floorplan: invalid config %+v", cfg))
	}
	if cfg.BlockGapFrac < 0 || cfg.BlockGapFrac >= 0.5 {
		panic(fmt.Sprintf("floorplan: BlockGapFrac %v out of [0, 0.5)", cfg.BlockGapFrac))
	}
	chip := &Chip{
		Width:  2*cfg.ChipMargin + float64(nx)*cfg.CoreWidth + float64(nx-1)*cfg.CoreGap,
		Height: 2*cfg.ChipMargin + float64(ny)*cfg.CoreHeight + float64(ny-1)*cfg.CoreGap,
	}
	id := 0
	for cy := 0; cy < ny; cy++ {
		for cx := 0; cx < nx; cx++ {
			coreIdx := cy*nx + cx
			x0 := cfg.ChipMargin + float64(cx)*(cfg.CoreWidth+cfg.CoreGap)
			y0 := cfg.ChipMargin + float64(cy)*(cfg.CoreHeight+cfg.CoreGap)
			core := &Core{
				Index:  coreIdx,
				Bounds: Rect{X0: x0, Y0: y0, X1: x0 + cfg.CoreWidth, Y1: y0 + cfg.CoreHeight},
			}
			cellW := cfg.CoreWidth / layoutCols
			cellH := cfg.CoreHeight / layoutRows
			gx := cellW * cfg.BlockGapFrac
			gy := cellH * cfg.BlockGapFrac
			for local := 0; local < BlocksPerCore; local++ {
				row := local / layoutCols
				col := local % layoutCols
				def := blockDefs[local]
				b := &Block{
					ID:    id,
					Core:  coreIdx,
					Local: local,
					Name:  def.name,
					Unit:  def.unit,
					Bounds: Rect{
						X0: x0 + float64(col)*cellW + gx,
						Y0: y0 + float64(row)*cellH + gy,
						X1: x0 + float64(col+1)*cellW - gx,
						Y1: y0 + float64(row+1)*cellH - gy,
					},
				}
				core.Blocks = append(core.Blocks, b)
				chip.Blocks = append(chip.Blocks, b)
				id++
			}
			chip.Cores = append(chip.Cores, core)
		}
	}
	return chip
}

// BlockAt returns the function block containing (x, y), or nil when the
// point lies in the blank area.
func (c *Chip) BlockAt(x, y float64) *Block {
	for _, core := range c.Cores {
		if !core.Bounds.Contains(x, y) {
			continue
		}
		for _, b := range core.Blocks {
			if b.Bounds.Contains(x, y) {
				return b
			}
		}
		return nil // inside the core but in a routing channel
	}
	return nil
}

// InFA reports whether (x, y) lies inside the function area.
func (c *Chip) InFA(x, y float64) bool { return c.BlockAt(x, y) != nil }

// CoreAt returns the core containing (x, y), or nil.
func (c *Chip) CoreAt(x, y float64) *Core {
	for _, core := range c.Cores {
		if core.Bounds.Contains(x, y) {
			return core
		}
	}
	return nil
}

// NumBlocks returns the total function-block count (cores x BlocksPerCore).
func (c *Chip) NumBlocks() int { return len(c.Blocks) }

// FAFraction returns the fraction of chip area covered by function blocks, a
// sanity metric used in tests (roughly 40-60% for the default config).
func (c *Chip) FAFraction() float64 {
	fa := 0.0
	for _, b := range c.Blocks {
		fa += b.Bounds.Area()
	}
	return fa / (c.Width * c.Height)
}

// NearestBlock returns the block whose center is nearest to (x, y) and the
// distance to it, used when associating sensor candidates with units for
// reporting.
func (c *Chip) NearestBlock(x, y float64) (*Block, float64) {
	var best *Block
	bestD := math.Inf(1)
	for _, b := range c.Blocks {
		bx, by := b.Bounds.Center()
		d := math.Hypot(bx-x, by-y)
		if d < bestD {
			best, bestD = b, d
		}
	}
	return best, bestD
}
