GO ?= go
BENCHTIME ?= 100ms

.PHONY: build test race vet bench bench-quick clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the kernel/solver/engine/server benchmark suite and writes
# BENCH_PR2.json with ns/op, allocs/op, and the speedup of each blocked
# parallel kernel over its serial naive baseline.
bench:
	$(GO) run ./cmd/benchreport -out BENCH_PR2.json -benchtime $(BENCHTIME)

# bench-quick runs every benchmark exactly once — the CI smoke configuration.
bench-quick:
	$(GO) run ./cmd/benchreport -out BENCH_PR2.json -benchtime 1x

clean:
	rm -f BENCH_PR2.json
