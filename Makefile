GO ?= go
BENCHTIME ?= 100ms

.PHONY: build test race vet lint bench bench-quick fault-ablation adapt-ablation docs-check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the deeper static analyzers when they are installed (CI installs
# them; locally this degrades to a notice rather than a failure).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; else echo "govulncheck not installed; skipping"; fi

# bench runs the kernel/solver/engine/server/online benchmark suite and
# writes BENCH_PR4.json with ns/op, allocs/op, and the speedup of each
# blocked parallel kernel over its serial naive baseline.
bench:
	$(GO) run ./cmd/benchreport -out BENCH_PR4.json -benchtime $(BENCHTIME)

# bench-quick runs every benchmark exactly once — the CI smoke configuration.
bench-quick:
	$(GO) run ./cmd/benchreport -out BENCH_PR4.json -benchtime 1x

# fault-ablation regenerates the sensor-failure table (naive vs leave-k-out
# fallback) that CI uploads as an artifact.
fault-ablation:
	$(GO) run ./cmd/voltmap faults | tee FAULT_ABLATION.txt
	$(GO) run ./cmd/voltmap -csv faults > FAULT_ABLATION.csv

# adapt-ablation regenerates the online-recalibration-under-drift table
# (baseline vs static-drifted vs adapted) that CI uploads as an artifact.
adapt-ablation:
	$(GO) run ./cmd/voltmap adapt | tee ADAPT_ABLATION.txt
	$(GO) run ./cmd/voltmap -csv adapt > ADAPT_ABLATION.csv

# docs-check enforces the documentation bar: package comments everywhere,
# intra-repo markdown links resolve, examples compile and pass.
docs-check:
	$(GO) run ./cmd/docscheck
	$(GO) test -run Example ./...

clean:
	rm -f BENCH_PR2.json BENCH_PR4.json FAULT_ABLATION.txt FAULT_ABLATION.csv ADAPT_ABLATION.txt ADAPT_ABLATION.csv
