GO ?= go
BENCHTIME ?= 100ms

.PHONY: build test race vet bench bench-quick fault-ablation docs-check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the kernel/solver/engine/server benchmark suite and writes
# BENCH_PR2.json with ns/op, allocs/op, and the speedup of each blocked
# parallel kernel over its serial naive baseline.
bench:
	$(GO) run ./cmd/benchreport -out BENCH_PR2.json -benchtime $(BENCHTIME)

# bench-quick runs every benchmark exactly once — the CI smoke configuration.
bench-quick:
	$(GO) run ./cmd/benchreport -out BENCH_PR2.json -benchtime 1x

# fault-ablation regenerates the sensor-failure table (naive vs leave-k-out
# fallback) that CI uploads as an artifact.
fault-ablation:
	$(GO) run ./cmd/voltmap faults | tee FAULT_ABLATION.txt
	$(GO) run ./cmd/voltmap -csv faults > FAULT_ABLATION.csv

# docs-check enforces the documentation bar: package comments everywhere,
# intra-repo markdown links resolve, examples compile and pass.
docs-check:
	$(GO) run ./cmd/docscheck
	$(GO) test -run Example ./...

clean:
	rm -f BENCH_PR2.json FAULT_ABLATION.txt FAULT_ABLATION.csv
