GO ?= go
BENCHTIME ?= 100ms

.PHONY: build test race vet lint bench bench-quick bench-compare bench-trajectory fleet-smoke fleet-compare fault-ablation adapt-ablation transfer-ablation docs-check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the deeper static analyzers when they are installed (CI installs
# them; locally this degrades to a notice rather than a failure).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; else echo "govulncheck not installed; skipping"; fi

# bench runs the kernel/solver/pipeline/engine/server/online benchmark suite
# and writes BENCH_PR10.json with ns/op, allocs/op, and the speedup of each
# parallel, warm-started, sparse, batched, or reduced-basis implementation
# over its serial/cold/banded/looped/dense baseline.
bench:
	$(GO) run ./cmd/benchreport -out BENCH_PR10.json -benchtime $(BENCHTIME)

# bench-quick runs every benchmark exactly once — the CI smoke configuration.
bench-quick:
	$(GO) run ./cmd/benchreport -out BENCH_PR10.json -benchtime 1x

# bench-compare regenerates a quick report and diffs it against the
# committed BENCH_PR10.json baseline; warn-only (see cmd/benchreport).
bench-compare:
	$(GO) run ./cmd/benchreport -out BENCH_PR10.new.json -benchtime 1x
	$(GO) run ./cmd/benchreport -compare BENCH_PR10.json -tolerance 0.25 BENCH_PR10.new.json

# bench-trajectory prints the cross-PR performance history from every
# committed BENCH_*.json baseline.
bench-trajectory:
	$(GO) run ./cmd/benchreport -trajectory

# fleet-smoke drives the multi-tenant server with the CI-sized fleet
# workload — 8 tenants, 1000 concurrent NDJSON streams, mixed
# predict/feedback/calibrate traffic (every 50th unary request is a few-shot
# /v1/calibrate alignment against the golden prior) — in-process, and writes
# BENCH_PR9.json.
fleet-smoke:
	$(GO) run ./cmd/voltbench -tenants 8 -streams 1000 -cycles 3 -requests 2000 -calibrate-every 50 -out BENCH_PR9.json

# fleet-compare regenerates a fleet report and diffs it against the
# committed BENCH_PR9.json baseline; warn-only (see cmd/benchreport).
fleet-compare:
	$(GO) run ./cmd/voltbench -tenants 8 -streams 1000 -cycles 3 -requests 2000 -calibrate-every 50 -out BENCH_PR9.new.json
	$(GO) run ./cmd/benchreport -compare BENCH_PR9.json -tolerance 0.5 BENCH_PR9.new.json

# fault-ablation regenerates the sensor-failure table (naive vs leave-k-out
# fallback) that CI uploads as an artifact.
fault-ablation:
	$(GO) run ./cmd/voltmap faults | tee FAULT_ABLATION.txt
	$(GO) run ./cmd/voltmap -csv faults > FAULT_ABLATION.csv

# adapt-ablation regenerates the online-recalibration-under-drift table
# (baseline vs static-drifted vs adapted) that CI uploads as an artifact.
adapt-ablation:
	$(GO) run ./cmd/voltmap adapt | tee ADAPT_ABLATION.txt
	$(GO) run ./cmd/voltmap -csv adapt > ADAPT_ABLATION.csv

# transfer-ablation regenerates the fleet few-shot calibration table (golden
# prior vs aligned vs from-scratch) that CI uploads as an artifact.
transfer-ablation:
	$(GO) run ./cmd/voltmap transfer | tee TRANSFER_ABLATION.txt
	$(GO) run ./cmd/voltmap -csv transfer > TRANSFER_ABLATION.csv

# docs-check enforces the documentation bar: package comments everywhere,
# intra-repo markdown links resolve, examples compile and pass.
docs-check:
	$(GO) run ./cmd/docscheck
	$(GO) test -run Example ./...

clean:
	rm -f BENCH_PR5.new.json BENCH_PR6.new.json BENCH_PR8.new.json BENCH_PR9.new.json BENCH_PR10.new.json FAULT_ABLATION.txt FAULT_ABLATION.csv ADAPT_ABLATION.txt ADAPT_ABLATION.csv TRANSFER_ABLATION.txt TRANSFER_ABLATION.csv
