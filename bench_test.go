// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus the ablations DESIGN.md calls out. Each benchmark iteration rebuilds
// its experiment from the shared quick pipeline with placement caches
// cleared, so timings reflect real work:
//
//	go test -bench=. -benchmem
//
// The substrate (chip + 19 benchmark transient simulations) is built once
// and shared; BenchmarkPipelineBuild measures that cost separately.
package voltsense

import (
	"errors"
	"sync"
	"testing"

	"voltsense/internal/core"
	"voltsense/internal/detect"
	"voltsense/internal/eagleeye"
	"voltsense/internal/experiments"
	"voltsense/internal/lasso"
	"voltsense/internal/mat"
	"voltsense/internal/vmap"
)

var (
	benchOnce sync.Once
	benchPipe *experiments.Pipeline
	benchErr  error
)

func benchPipeline(b *testing.B) *experiments.Pipeline {
	b.Helper()
	benchOnce.Do(func() {
		benchPipe, benchErr = experiments.New(experiments.QuickConfig())
	})
	if benchErr != nil {
		b.Fatalf("building pipeline: %v", benchErr)
	}
	return benchPipe
}

// BenchmarkPipelineBuild measures the substrate cost: floorplan, 19
// workload syntheses, and all transient power-grid simulations.
func BenchmarkPipelineBuild(b *testing.B) {
	cfg := experiments.QuickConfig()
	// A smaller build per iteration keeps the benchmark affordable while
	// still exercising every stage.
	cfg.TrainSteps = 200
	cfg.TrainMaps = 1000
	cfg.TestSteps = 40
	cfg.CalibSteps = 60
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.New(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates the λ sweep: per-core group-lasso placement
// at six budgets plus the OLS refit and held-out scoring.
func BenchmarkTable1(b *testing.B) {
	p := benchPipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ClearPlacementCache()
		d, err := p.Table1(nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure1 regenerates the group-norm profiles at the two budgets.
func BenchmarkFigure1(b *testing.B) {
	p := benchPipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ClearPlacementCache()
		if _, err := p.Figure1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates the predicted-vs-real voltage trace,
// including a fresh transient simulation window.
func BenchmarkFigure2(b *testing.B) {
	p := benchPipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ClearPlacementCache()
		if _, err := p.Figure2(0, 14, 150); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 regenerates the placement-location comparison.
func BenchmarkFigure3(b *testing.B) {
	p := benchPipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ClearPlacementCache()
		if _, err := p.Figure3(0, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates the 19-benchmark detection-error comparison.
func BenchmarkTable2(b *testing.B) {
	p := benchPipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ClearPlacementCache()
		d, err := p.Table2(2)
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Rows) != 19 {
			b.Fatalf("rows = %d", len(d.Rows))
		}
	}
}

// BenchmarkFigure4 regenerates the sensor-budget sweep for one benchmark.
func BenchmarkFigure4(b *testing.B) {
	p := benchPipeline(b)
	bench := p.BusiestBenchmark()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ClearPlacementCache()
		if _, err := p.Figure4(bench, 1, 2, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGLDirect measures the Eq. 14 vs Eq. 20 comparison (the
// bias the OLS refit removes).
func BenchmarkAblationGLDirect(b *testing.B) {
	p := benchPipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := p.AblationGLDirect(4)
		if err != nil {
			b.Fatal(err)
		}
		if d.RelErrRefit >= d.RelErrGL {
			b.Fatal("refit lost to biased model")
		}
	}
}

// BenchmarkAblationSolvers compares the two group-lasso solvers on the same
// core-0 instance: the constrained FISTA production path and the penalized
// BCD used for count targeting.
func BenchmarkAblationSolvers(b *testing.B) {
	p := benchPipeline(b)
	ds, _ := p.CoreDataset(0, p.Train)
	z, _ := mat.Standardize(ds.X)
	g, _ := mat.Standardize(ds.F)
	// Fixed iteration budget, selection-grade tolerance: the benchmark
	// measures solver throughput, so an unconverged tail is acceptable.
	opts := lasso.Options{MaxIter: 1000, Tol: 1e-5}
	b.Run("ConstrainedFISTA", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lasso.SolveConstrained(z, g, 4, opts); err != nil && !errors.Is(err, lasso.ErrDidNotConverge) {
				b.Fatal(err)
			}
		}
	})
	b.Run("PenalizedBCD", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lasso.SolvePenalized(z, g, 50, opts); err != nil && !errors.Is(err, lasso.ErrDidNotConverge) {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationEagleEye measures the baseline's chip-wide greedy
// placement.
func BenchmarkAblationEagleEye(b *testing.B) {
	p := benchPipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl := eagleeye.Place(p.Train.CandV, p.Train.CritV, p.Cfg.Vth, 16)
		if len(pl.Selected) != 16 {
			b.Fatal("placement failed")
		}
	}
}

// BenchmarkVoltageMapTrain measures fitting the full-chip map generator.
func BenchmarkVoltageMapTrain(b *testing.B) {
	p := benchPipeline(b)
	_, sensors, err := p.ChipPlacementCount(2)
	if err != nil {
		b.Fatal(err)
	}
	sx := p.Train.CandV.SelectRows(sensors)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vmap.Train(sx, p.Train.CandV); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimePrediction measures the paper's runtime claim: evaluating
// Eq. 20 for all 240 blocks from one sensor reading is trivially cheap
// compared to any simulation.
func BenchmarkRuntimePrediction(b *testing.B) {
	p := benchPipeline(b)
	_, sensors, err := p.ChipPlacementCount(2)
	if err != nil {
		b.Fatal(err)
	}
	pred, err := p.BuildChipPredictor(sensors)
	if err != nil {
		b.Fatal(err)
	}
	reading := make([]float64, len(sensors))
	for i, s := range sensors {
		reading[i] = p.Train.CandV.At(s, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := pred.Predict(reading)
		if len(f) != p.Chip.NumBlocks() {
			b.Fatal("bad prediction size")
		}
	}
}

// BenchmarkEmergencyScoring measures detection-rate computation over the
// pooled held-out set.
func BenchmarkEmergencyScoring(b *testing.B) {
	p := benchPipeline(b)
	test := p.TestAll()
	truth := detect.TruthFromVoltages(test.CritV, p.Cfg.Vth)
	_, sensors, err := p.ChipPlacementCount(2)
	if err != nil {
		b.Fatal(err)
	}
	pred, err := p.BuildChipPredictor(sensors)
	if err != nil {
		b.Fatal(err)
	}
	predicted := p.PredictTest(pred, test)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alarms := detect.AlarmsFromPredictions(predicted, p.Cfg.Vth)
		r := detect.Score(truth, alarms)
		if r.Samples == 0 {
			b.Fatal("no samples")
		}
	}
}

// sanity check: the facade compiles into the same types the benches use.
var _ = core.DefaultThreshold
