// Fleet serving: one voltserved process, many chips. Two chips with
// different sensor placements get their own runtime models; a store
// directory of <tenant-id>.json artifacts becomes a model registry, and
// requests route to a tenant's model by the X-Voltsense-Tenant header.
// Retraining one chip and rescanning swaps only that tenant — the other
// keeps serving its model, untouched.
//
// This is the library form of:
//
//	voltserved -store ./fleet -max-tenants 64
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"voltsense"
	"voltsense/internal/monitor"
	"voltsense/internal/serve"
)

func main() {
	fmt.Println("building pipeline...")
	p, err := voltsense.NewPipeline(voltsense.QuickConfig())
	if err != nil {
		log.Fatal(err)
	}
	train := &voltsense.Dataset{X: p.Train.CandV, F: p.Train.CritV}

	// Two chips, two placements: chip-a gets 2 sensors per core, chip-b 3.
	// Each gets its own fitted Eq. 17 model; the reading width each model
	// expects is the size of its sensor union.
	store, err := os.MkdirTemp("", "fleet-store-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(store)
	width := map[string]int{}
	for tenant, perCore := range map[string]int{"chip-a": 2, "chip-b": 3} {
		q, err := fitTenant(p, train, store, tenant, perCore)
		if err != nil {
			log.Fatal(err)
		}
		width[tenant] = q
	}

	// One server over the store. chip-a doubles as the default tenant, so
	// requests that name no tenant — old single-tenant clients — still work.
	srv, err := serve.New(serve.Config{
		StoreDir:      store,
		DefaultTenant: "chip-a",
		Monitor:       monitor.Config{Vth: 0.95},
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Printf("fleet server on %s, store %s\n\n", base, store)

	// Route by header; an absent tenant falls back to the default.
	predict(base, "", width["chip-a"])
	predict(base, "chip-b", width["chip-b"])

	// Retrain chip-b (here: refit as-is) and rescan. Only chip-b reloads;
	// chip-a's generation — and any live stream it has — is untouched.
	if _, err := fitTenant(p, train, store, "chip-b", 3); err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/reload", "application/json", nil)
	if err != nil {
		log.Fatal(err)
	}
	var rl map[string]any
	json.NewDecoder(resp.Body).Decode(&rl)
	resp.Body.Close()
	fmt.Printf("rescan: reloaded=%v removed=%v\n\n", rl["reloaded"], rl["removed"])

	predict(base, "", width["chip-a"])
	predict(base, "chip-b", width["chip-b"])
}

// fitTenant places perCore sensors on every core, fits the runtime model,
// and writes the tenant's artifact into the store. Returns the model's
// reading width (the sensor-union size).
func fitTenant(p *voltsense.Pipeline, train *voltsense.Dataset, store, tenant string, perCore int) (int, error) {
	_, sensors, err := p.ChipPlacementCount(perCore)
	if err != nil {
		return 0, err
	}
	pred, err := voltsense.BuildPredictor(train, sensors)
	if err != nil {
		return 0, err
	}
	f, err := os.Create(filepath.Join(store, tenant+".json"))
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return len(sensors), voltsense.SavePredictor(f, pred)
}

// predict posts one reading vector of the tenant's width and prints the
// response, which names the tenant and model generation that served it.
func predict(base, tenant string, q int) {
	row := make([]float64, q)
	for i := range row {
		row[i] = 0.96
	}
	body, _ := json.Marshal(map[string]any{"readings": [][]float64{row}})
	req, err := http.NewRequest(http.MethodPost, base+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(serve.TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		log.Fatalf("predict as %q: %s: %s", tenant, resp.Status, raw)
	}
	var out struct {
		Tenant     string      `json:"tenant"`
		Generation uint64      `json:"model_generation"`
		Voltages   [][]float64 `json:"voltages"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	who := tenant
	if who == "" {
		who = "(no tenant header)"
	}
	v := out.Voltages[0]
	if len(v) > 4 {
		v = v[:4]
	}
	fmt.Printf("%-20s -> served by %q gen %d, voltages %.4f...\n", who, out.Tenant, out.Generation, v)
}
