// Quickstart: build the experimental substrate, place two noise sensors per
// core with group lasso, refit the unbiased prediction model, and check how
// well the predicted block voltages track the simulator on held-out data —
// the end-to-end workflow of the DAC 2015 methodology in ~40 lines.
package main

import (
	"fmt"
	"log"

	"voltsense"
)

func main() {
	// The quick pipeline simulates the 8-core chip running all 19 synthetic
	// PARSEC-like benchmarks and collects training + held-out voltage maps.
	fmt.Println("building pipeline (this simulates 19 benchmarks; ~10s)...")
	p, err := voltsense.NewPipeline(voltsense.QuickConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip: %d blocks, %d sensor candidate sites, %d training maps\n",
		p.Chip.NumBlocks(), len(p.Grid.Candidates), p.Train.N())

	// Step 1 — sensor placement: two sensors per core via group lasso.
	_, sensors, err := p.ChipPlacementCount(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed %d sensors across the blank area\n", len(sensors))

	// Step 2 — prediction model: unbiased OLS refit on the raw data.
	pred, err := p.BuildChipPredictor(sensors)
	if err != nil {
		log.Fatal(err)
	}

	// Step 3 — runtime: predict every block's supply voltage from the
	// sensors alone, on data the model never saw.
	test := p.TestAll()
	fmt.Printf("aggregated relative prediction error: %.3f%%\n", 100*p.RelErrorOn(pred, test))

	// Step 4 — emergency detection from the predictions.
	truth := voltsense.EmergencyTruth(test.CritV, voltsense.DefaultVth)
	alarms := voltsense.PredictionAlarms(p.PredictTest(pred, test), voltsense.DefaultVth)
	rates := voltsense.ScoreDetection(truth, alarms)
	fmt.Printf("emergency detection: %v over %d held-out maps (%d emergencies)\n",
		rates, rates.Samples, rates.Emergencies)
}
