// Criteria shootout: run every registered placement criterion — the paper's
// group lasso, the Eagle-Eye baseline, QR-pivot, D-/E-optimal, FrameSense
// and worst-case — against the same chip data and rank them on held-out
// detection quality and placement wall-clock (DESIGN.md §13). Then place a
// heterogeneous network under a cost budget: quiet reference sensors vs
// cheap noisy ones, refit by GLS so each reading is weighted by its
// precision.
package main

import (
	"fmt"
	"log"

	"voltsense"
)

func main() {
	fmt.Println("building pipeline...")
	p, err := voltsense.NewPipeline(voltsense.QuickConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Every criterion, 8 sensors each, one shared standardization + candidate
	// POD fit; the mixed row spends the same budget 8 reference sensors would
	// cost. Rows come back ranked by held-out total error.
	const q = 8
	spec := voltsense.DefaultSensorClassSpec
	d, err := p.CriteriaShootout(q, nil, spec, float64(q)*spec.RefCost)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(d.Render())

	// The same machinery on caller-supplied data: pick one criterion by name
	// and refit the paper's runtime model on its selection.
	ds := &voltsense.Dataset{X: p.Train.CandV, F: p.Train.CritV}
	cp, err := voltsense.PlaceWithCriterion(ds, "qrpivot", q, voltsense.CriterionConfig{})
	if err != nil {
		log.Fatal(err)
	}
	pred, err := voltsense.BuildPredictor(ds, cp.Selected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nqrpivot on raw data picked sites %v (%d model outputs)\n",
		cp.Selected, len(pred.Model.C))

	// Heterogeneous placement: the budget buys a mix of device classes, and
	// the GLS refit trusts reference readings 16x more than low-cost ones.
	mp, prob, err := voltsense.PlaceMixedSensors(ds, spec, float64(q)*spec.RefCost, voltsense.CriterionConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ref, low := mp.CountByClass()
	if _, err := voltsense.BuildGLSPredictor(prob, mp.Selected, mp.NoiseVariances(spec)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget %.0f bought %d reference + %d low-cost sensors (cost %.0f) at sites %v\n",
		float64(q)*spec.RefCost, ref, low, mp.Cost, mp.Selected)
}
