// Emergency detection: the paper's Section 3.2 comparison as a program.
// Both approaches get the same sensor budget; Eagle-Eye thresholds its
// sensors directly while the proposed method thresholds model *predictions*
// of the function-area voltages — and roughly halves the miss rate.
package main

import (
	"fmt"
	"log"

	"voltsense"
)

func main() {
	fmt.Println("building pipeline...")
	p, err := voltsense.NewPipeline(voltsense.QuickConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Proposed: 2 sensors per core by group lasso, then the OLS model.
	_, sensors, err := p.ChipPlacementCount(2)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := p.BuildChipPredictor(sensors)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: Eagle-Eye's greedy emergency-coverage placement with the
	// same total budget, alarming on raw sensor readings.
	ee := voltsense.PlaceEagleEye(p.Train.CandV, p.Train.CritV, voltsense.DefaultVth, len(sensors))
	fmt.Printf("budget: %d sensors; Eagle-Eye covers %.0f%% of training emergencies\n",
		len(sensors), 100*ee.Coverage)

	fmt.Printf("\n%-16s | %-26s | %-26s\n", "", "Eagle-Eye", "Proposed")
	fmt.Printf("%-16s | %8s %8s %8s | %8s %8s %8s\n",
		"benchmark", "ME", "WAE", "TE", "ME", "WAE", "TE")
	var meE, meP, teE, teP float64
	for bi, s := range p.TestByBench {
		truth := voltsense.EmergencyTruth(s.CritV, voltsense.DefaultVth)
		rEE := voltsense.ScoreDetection(truth, ee.Alarms(s.CandV))
		rPR := voltsense.ScoreDetection(truth,
			voltsense.PredictionAlarms(p.PredictTest(pred, s), voltsense.DefaultVth))
		fmt.Printf("%-16s | %8.4f %8.4f %8.4f | %8.4f %8.4f %8.4f\n",
			p.Bench[bi].Name, rEE.ME, rEE.WAE, rEE.TE, rPR.ME, rPR.WAE, rPR.TE)
		meE += rEE.ME
		meP += rPR.ME
		teE += rEE.TE
		teP += rPR.TE
	}
	n := float64(len(p.TestByBench))
	fmt.Printf("\nmean miss error:  Eagle-Eye %.4f vs proposed %.4f (%.1fx lower)\n",
		meE/n, meP/n, (meE+1e-12)/(meP+1e-12))
	fmt.Printf("mean total error: Eagle-Eye %.4f vs proposed %.4f (%.1fx lower)\n",
		teE/n, teP/n, (teE+1e-12)/(teP+1e-12))
}
