// Fleet transfer calibration: enroll a fielded chip from a handful of
// labeled samples instead of a full characterization campaign. A golden
// chip's full fit is distilled into a shared prior; a fielded chip whose
// silicon drifted from golden is enrolled through POST /v1/calibrate with
// 16 labeled (readings, voltages) pairs, and the server stores only a thin
// delta over the prior for it.
//
// This is the library form of:
//
//	voltserved -store ./fleet -prior golden.prior.json
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"voltsense"
	"voltsense/internal/monitor"
	"voltsense/internal/serve"
)

func main() {
	fmt.Println("building pipeline...")
	p, err := voltsense.NewPipeline(voltsense.QuickConfig())
	if err != nil {
		log.Fatal(err)
	}
	train := &voltsense.Dataset{X: p.Train.CandV, F: p.Train.CritV}

	// The golden chip: the full training campaign buys one well-fitted
	// model, whose residual statistics feed the prior's noise variance.
	_, union, err := p.ChipPlacementCount(2)
	if err != nil {
		log.Fatal(err)
	}
	golden, err := voltsense.BuildPredictor(train, union)
	if err != nil {
		log.Fatal(err)
	}
	residMean, residStd := golden.FitResidualStats(train)
	golden.Lineage = &voltsense.Lineage{
		Version: 1, Source: voltsense.LineageSourceTrain,
		Samples: train.X.Cols(), ResidMean: residMean, ResidStd: residStd,
	}
	prior, err := voltsense.FitSharedPrior([]*voltsense.Predictor{golden}, voltsense.SharedPriorConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// A fleet store holding the golden's full artifact as the default
	// tenant — legacy artifacts and thin deltas coexist in one store.
	store, err := os.MkdirTemp("", "fleet-calib-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(store)
	f, err := os.Create(filepath.Join(store, "default.json"))
	if err != nil {
		log.Fatal(err)
	}
	if err := voltsense.SavePredictor(f, golden); err != nil {
		log.Fatal(err)
	}
	f.Close()

	srv, err := serve.New(serve.Config{
		StoreDir: store,
		Prior:    prior,
		Monitor:  monitor.Config{Vth: 0.85},
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Printf("fleet server on %s (prior %s)\n\n", base, prior.Fingerprint())

	// The fielded chip: same design, drifted silicon. Its true model is the
	// golden's coefficients scaled a few percent — what process variation
	// and aging do to the Eq. 20 map.
	fielded := perturb(golden)

	// Its calibration rig collects 16 labeled pairs: sensor readings from
	// held-out operating points, block voltages from the chip's own silicon.
	q, k := len(union), train.F.Rows()
	held := p.TestByBench[0]
	n := held.CandV.Cols()
	var samples []map[string]any
	for j := 0; j < 16; j++ {
		col := j * n / 16
		readings := make([]float64, q)
		for i, g := range union {
			readings[i] = held.CandV.At(g, col)
		}
		samples = append(samples, map[string]any{
			"readings": readings,
			"voltages": fielded.Predict(readings),
		})
	}

	// Enroll it. The server aligns the prior to the 16 samples, writes a
	// thin voltsense-delta/v1 artifact, and serves the aligned model.
	body, _ := json.Marshal(map[string]any{"samples": samples})
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/calibrate", bytes.NewReader(body))
	req.Header.Set(serve.TenantHeader, "chip-042")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		log.Fatalf("calibrate: %s: %s", resp.Status, raw)
	}
	var cal struct {
		Accepted          int    `json:"accepted"`
		ModelVersion      int    `json:"model_version"`
		DeltaCoefficients int    `json:"delta_coefficients"`
		PriorFingerprint  string `json:"prior_fingerprint"`
	}
	json.NewDecoder(resp.Body).Decode(&cal)
	resp.Body.Close()
	fmt.Printf("calibrated chip-042: %d samples accepted, model version %d\n", cal.Accepted, cal.ModelVersion)
	fmt.Printf("stored delta: %d coefficients pinned to prior %s\n", cal.DeltaCoefficients, cal.PriorFingerprint)
	fmt.Printf("(a full artifact would store %d coefficients plus metadata)\n\n", k*(q+1))

	// How much did 16 samples buy? Score the served model against the
	// fielded chip's truth on a fresh operating point, next to the
	// zero-shot prior mean the chip would be served without calibration.
	probe := make([]float64, q)
	for i, g := range union {
		probe[i] = held.CandV.At(g, n-1)
	}
	truth := fielded.Predict(probe)
	aligned := predictAs(base, "chip-042", probe)
	priorOnly := prior.Predictor().Predict(probe)
	fmt.Printf("max |error| vs the fielded chip's truth on a fresh operating point:\n")
	fmt.Printf("  prior only (0 samples): %.5f V\n", maxAbsDiff(priorOnly, truth))
	fmt.Printf("  aligned   (16 samples): %.5f V\n", maxAbsDiff(aligned, truth))
}

// perturb returns a copy of pred whose coefficients are scaled by a few
// percent, deterministically — the fielded chip's "true" drifted model.
func perturb(pred *voltsense.Predictor) *voltsense.Predictor {
	k, q := pred.Model.Alpha.Rows(), pred.Model.Alpha.Cols()
	alpha := voltsense.ZeroMatrix(k, q)
	c := make([]float64, k)
	for i := 0; i < k; i++ {
		scale := 1 + 0.03*math.Sin(float64(3*i+1))
		for j := 0; j < q; j++ {
			alpha.Set(i, j, pred.Model.Alpha.At(i, j)*scale)
		}
		c[i] = pred.Model.C[i] + 0.002*math.Cos(float64(i))
	}
	out := *pred
	m := *pred.Model
	m.Alpha, m.C = alpha, c
	out.Model = &m
	out.Lineage = nil
	return &out
}

// predictAs posts one reading vector as the given tenant and returns the
// served voltages.
func predictAs(base, tenant string, readings []float64) []float64 {
	body, _ := json.Marshal(map[string]any{"readings": [][]float64{readings}})
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/predict", bytes.NewReader(body))
	req.Header.Set(serve.TenantHeader, tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		log.Fatalf("predict as %q: %s: %s", tenant, resp.Status, raw)
	}
	var out struct {
		Voltages [][]float64 `json:"voltages"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return out.Voltages[0]
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
