// Runtime monitor: the deployment story. After design-time placement and
// model fitting, stream a live power-grid transient through the runtime
// monitor — each simulation step plays the role of one sensor sampling
// cycle — and watch per-block emergency alarms fire and clear, with a
// throttle hook standing in for the DVFS/issue controller the paper's
// introduction surveys.
package main

import (
	"fmt"
	"log"

	"voltsense"
)

func main() {
	fmt.Println("building pipeline...")
	p, err := voltsense.NewPipeline(voltsense.QuickConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Design time: place 3 sensors per core, fit the runtime model.
	_, sensors, err := p.ChipPlacementCount(3)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := p.BuildChipPredictor(sensors)
	if err != nil {
		log.Fatal(err)
	}

	throttles := 0
	mon, err := voltsense.NewMonitor(pred, p.Chip.NumBlocks(),
		voltsense.MonitorConfig{Vth: voltsense.DefaultVth},
		voltsense.ThrottleFunc(func(cycle int, blocks []int) {
			throttles++
			if throttles <= 5 {
				fmt.Printf("  cycle %4d: THROTTLE blocks %v\n", cycle, blocks)
			}
		}))
	if err != nil {
		log.Fatal(err)
	}

	// Runtime: replay a held-out benchmark and feed the monitor only the
	// placed sensors' readings, exactly what real hardware would see.
	bench := p.BusiestBenchmark()
	s := p.TestByBench[bench]
	fmt.Printf("monitoring %s with %d sensors over %d sampling cycles\n",
		p.Bench[bench].Name, len(sensors), s.N())
	readings := make([]float64, len(sensors))
	events := 0
	for cycle := 0; cycle < s.N(); cycle++ {
		for i, idx := range sensors {
			readings[i] = s.CandV.At(idx, cycle)
		}
		for _, e := range mon.Process(cycle, readings) {
			events++
			if events <= 10 {
				blk := p.Chip.Blocks[e.Block]
				fmt.Printf("  cycle %4d: %s block %s/core%d at %.3f V\n",
					e.Cycle, e.Kind, blk.Name, blk.Core, e.Voltage)
			}
		}
	}

	st := mon.Stats()
	fmt.Printf("\nsession: %d cycles, %d alarms, %d block-cycles in emergency, %d throttles\n",
		st.Cycles, st.Alarms, st.EmergencyCycles, throttles)
	if st.WorstBlock >= 0 {
		blk := p.Chip.Blocks[st.WorstBlock]
		fmt.Printf("worst predicted voltage: %.3f V at %s/core%d\n",
			st.WorstVoltage, blk.Name, blk.Core)
	}
}
