// Fault tolerance: the degradation-tier story end to end, in library form.
// Fit the Eq. 17 model with precomputed leave-k-out fallbacks, then replay a
// held-out transient with a sensor that freezes mid-stream. The rolling-stats
// detector flatlines it within one window, the guard atomically reroutes
// prediction to the leave-one-out submodel, and the voltage map stays usable
// — the same machinery voltserved runs behind its streaming API.
package main

import (
	"fmt"
	"log"
	"math"

	"voltsense"
)

func main() {
	fmt.Println("building pipeline...")
	p, err := voltsense.NewPipeline(voltsense.QuickConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Design time: place sensors, then fit the runtime model WITH fallbacks
	// (budget 2: every leave-one-out submodel plus a greedy pair).
	_, sensors, err := p.ChipPlacementCount(2)
	if err != nil {
		log.Fatal(err)
	}
	train := &voltsense.Dataset{X: p.Train.CandV, F: p.Train.CritV}
	pred, err := voltsense.BuildPredictorWithFallbacks(train, sensors, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed %d sensors, fitted %d fallback submodels\n",
		len(sensors), len(pred.Fallbacks.Models))

	// Runtime wiring: detector over the training statistics, guard routing
	// between the primary model and the fallback set.
	det, err := voltsense.NewFaultDetector(pred.Fallbacks.Stats,
		voltsense.FaultDetectorConfig{Window: 16})
	if err != nil {
		log.Fatal(err)
	}
	primary := voltsense.FaultRoute{Predict: pred.Model.Predict}
	lookup := func(faulty []int) (voltsense.FaultRoute, bool) {
		fm := pred.Fallbacks.Lookup(faulty)
		if fm == nil {
			return voltsense.FaultRoute{}, false
		}
		return voltsense.FaultRoute{Predict: fm.PredictFull, Excluded: fm.Excluded}, true
	}
	guard, err := voltsense.NewFaultGuard(det, primary, lookup)
	if err != nil {
		log.Fatal(err)
	}

	// Chaos: sensor 1 freezes at its training mean from cycle 40 on — the
	// nastiest stuck-at, invisible to any mean-shift check, caught only by
	// the window variance collapsing.
	faultStart := 40
	inj, err := voltsense.NewFaultInjector([]voltsense.Fault{
		{Sensor: 1, Kind: voltsense.FaultStuck, Start: faultStart,
			Value: pred.Fallbacks.Stats[1].Mean},
	}, len(sensors))
	if err != nil {
		log.Fatal(err)
	}

	// Replay the held-out cycles through injector -> guard, scoring the
	// served map against the simulated truth in three phases.
	s := p.TestAll()
	fmt.Printf("replaying %d held-out cycles; sensor 1 freezes at cycle %d\n\n",
		s.N(), faultStart)
	readings := make([]float64, len(sensors))
	var sumErr [3]float64
	var cycles [3]int
	switchCycle := -1
	for cycle := 0; cycle < s.N(); cycle++ {
		for i, idx := range sensors {
			readings[i] = s.CandV.At(idx, cycle)
		}
		inj.Apply(cycle, readings)
		volts, st := guard.Process(readings)
		if st.Changed {
			switchCycle = cycle
			fmt.Printf("cycle %3d: diagnosed faulty sensors %v, serving fallback excluding %v\n",
				cycle, st.Faulty, st.ActiveExcluded)
		}
		if st.Degraded {
			log.Fatalf("cycle %d: degraded — budget exceeded", cycle)
		}
		phase := 0 // healthy
		switch {
		case cycle >= faultStart && switchCycle < 0:
			phase = 1 // faulted, not yet detected: primary eats garbage
		case switchCycle >= 0:
			phase = 2 // fallback serving
		}
		worst := 0.0
		for k, v := range volts {
			if e := math.Abs(v - s.CritV.At(k, cycle)); e > worst {
				worst = e
			}
		}
		sumErr[phase] += worst
		cycles[phase]++
	}

	fmt.Println("\nmean worst-node absolute error by phase:")
	for i, name := range []string{"healthy (primary)", "faulted, undetected", "fallback serving"} {
		if cycles[i] == 0 {
			continue
		}
		fmt.Printf("  %-20s %4d cycles  %.4f V\n", name, cycles[i], sumErr[i]/float64(cycles[i]))
	}
	fmt.Printf("\ndetection latency: %d cycles (window 16); fallback rel. error %.2f%%\n",
		switchCycle-faultStart, 100*pred.Fallbacks.Lookup([]int{1}).RelError)
}
