// Placement tradeoff: sweep the group-lasso budget λ and watch the paper's
// Table 1 tradeoff emerge — more sensors buy prediction accuracy — then pick
// the cheapest placement meeting an accuracy target, the workflow the
// paper's Section 2.4 prescribes for designers.
package main

import (
	"fmt"
	"log"

	"voltsense"
)

func main() {
	fmt.Println("building pipeline...")
	p, err := voltsense.NewPipeline(voltsense.QuickConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Sweep λ on core 0 only: each point selects sensors on the training
	// maps and scores prediction error on the held-out maps.
	train, _ := p.CoreDataset(0, p.Train)
	test, _ := p.CoreDataset(0, p.TestAll())
	lambdas := []float64{1, 2, 3, 4, 6, 8}
	points, err := voltsense.SweepLambda(train, test, lambdas, voltsense.PlacementConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%8s %10s %14s\n", "lambda", "sensors", "rel error (%)")
	for _, pt := range points {
		fmt.Printf("%8.1f %10d %14.4f\n", pt.LambdaF, pt.NumSensors, 100*pt.RelError)
	}

	// Designer's rule: cheapest placement with error below 0.25%.
	const target = 0.0025
	for _, pt := range points {
		if pt.RelError < target && pt.Predictor != nil {
			fmt.Printf("\nchosen: λ=%.1f → %d sensors/core, rel error %.4f%% (target %.2f%%)\n",
				pt.LambdaF, pt.NumSensors, 100*pt.RelError, 100*target)
			fmt.Printf("selected candidate sites: %v\n", pt.Predictor.Selected)
			return
		}
	}
	fmt.Println("\nno sweep point met the target; extend the λ range")
}
