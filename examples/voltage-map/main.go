// Voltage map: the title's "full-chip voltage map generation". Train a
// per-node model on the placed sensors, reconstruct the blank-area voltage
// field of the worst held-out moment, and render measured vs reconstructed
// maps side by side as ASCII heat fields.
package main

import (
	"fmt"
	"log"

	"voltsense"
)

func main() {
	fmt.Println("building pipeline...")
	p, err := voltsense.NewPipeline(voltsense.QuickConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Place 3 sensors per core and train the full-map generator: one linear
	// model row per grid node, all driven by the same few sensors.
	_, sensors, err := p.ChipPlacementCount(3)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := voltsense.TrainMapGenerator(
		p.Train.CandV.SelectRows(sensors), p.Train.CandV)
	if err != nil {
		log.Fatal(err)
	}

	// Find the held-out moment with the deepest droop anywhere on chip.
	bench := p.BusiestBenchmark()
	s := p.TestByBench[bench]
	col, worst := 0, 2.0
	for j := 0; j < s.N(); j++ {
		for i := 0; i < s.CritV.Rows(); i++ {
			if v := s.CritV.At(i, j); v < worst {
				col, worst = j, v
			}
		}
	}
	fmt.Printf("benchmark %s, worst held-out droop %.3f V\n", p.Bench[bench].Name, worst)

	// Reconstruct that moment's map from the sensor readings alone.
	reading := make([]float64, len(sensors))
	for i, idx := range sensors {
		reading[i] = s.CandV.At(idx, col)
	}
	pred := gen.Generate(reading)
	truth := s.CandV.Col(col)

	vdd := p.Grid.Cfg.VDD
	full := make([]float64, p.Grid.NumNodes())
	render := func(field []float64, title string) {
		for i := range full {
			full[i] = vdd
		}
		for i, nd := range p.Grid.Candidates {
			full[nd] = field[i]
		}
		fmt.Println(title)
		fmt.Print(voltsense.RenderMap(p.Grid, full, voltsense.DefaultVth, vdd))
	}
	render(truth, "measured blank-area field (dark = deep droop):")
	render(pred, fmt.Sprintf("reconstructed from %d sensors:", len(sensors)))

	var maxErr float64
	for i := range pred {
		if d := pred[i] - truth[i]; d > maxErr || -d > maxErr {
			maxErr = max(d, -d)
		}
	}
	fmt.Printf("worst node reconstruction error: %.4f V\n", maxErr)
}
