// Online adaptation: tracking a drifting chip, in library form. Fit the
// Eq. 17 model, then replay held-out cycles while an aging-style IR droop
// ramps in underneath it — block voltages sag unevenly, so the fitted
// affine map is simply wrong on the aged chip. Each cycle's ground truth
// feeds an OnlineAdapter: a Sherman–Morrison shadow refit scores itself
// against the live model on the paper's total-error rate and is promoted
// once it provably wins — the same loop voltserved runs behind
// POST /v1/feedback.
package main

import (
	"fmt"
	"log"
	"math"

	"voltsense"
)

func main() {
	fmt.Println("building pipeline...")
	p, err := voltsense.NewPipeline(voltsense.QuickConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Design time: place sensors and fit the runtime model on the fresh chip.
	_, sensors, err := p.ChipPlacementCount(2)
	if err != nil {
		log.Fatal(err)
	}
	train := &voltsense.Dataset{X: p.Train.CandV, F: p.Train.CritV}
	pred, err := voltsense.BuildPredictor(train, sensors)
	if err != nil {
		log.Fatal(err)
	}
	k := len(pred.Model.C)

	// Stamp provenance and the drift baseline: the adapter judges runtime
	// residuals against the model's own training-time residual statistics.
	mean, std := pred.FitResidualStats(train)
	pred.Lineage = &voltsense.Lineage{
		Version:   1,
		Source:    voltsense.LineageSourceTrain,
		Samples:   train.X.Cols(),
		ResidMean: mean,
		ResidStd:  std,
	}

	// The recalibration loop. The apply callback is where voltserved vetoes
	// stale or fault-compromised promotions; here it just narrates. It runs
	// under the adapter's lock, so it must not call back into the adapter.
	promotedAt := -1
	cycle := 0
	apply := func(cand *voltsense.Predictor, rollback bool) error {
		fmt.Printf("cycle %4d: promoted shadow -> live (version %d, refit from %d samples)\n",
			cycle, cand.Lineage.Version, cand.Lineage.Samples)
		return nil
	}
	ad, err := voltsense.NewOnlineAdapter(pred, voltsense.OnlineConfig{
		Forgetting:        0.999,
		EvalWindow:        256,
		MinSamples:        256,
		Margin:            0.02,
		DriftWindow:       16,
		Vth:               voltsense.DefaultVth,
		BaselineResidMean: mean,
		BaselineResidStd:  std,
	}, apply)
	if err != nil {
		log.Fatal(err)
	}

	// Replay the held-out cycles. From driftStart on, an IR droop ramps in
	// over rampLen cycles: sensors sag uniformly but each block sags by a
	// different amount, so no global offset can explain it — the alpha/c
	// relation itself has moved, and only a refit recovers it.
	s := p.TestAll()
	n := s.N()
	driftStart, rampLen, droop := n/4, n/8, 0.02
	fmt.Printf("replaying %d held-out cycles; aging droop (up to %.0f mV) ramps in from cycle %d\n\n",
		n, 1e3*droop, driftStart)

	// Score two servers on every cycle — one frozen on the v1 fit (the
	// counterfactual without this subsystem) and the adapted live model —
	// on the metric the whole methodology optimizes: did the predicted map
	// classify the cycle's emergency state correctly at Vth?
	vth := voltsense.DefaultVth
	below := func(v []float64) bool {
		for _, x := range v {
			if x < vth {
				return true
			}
		}
		return false
	}
	readings := make([]float64, len(sensors))
	truth := make([]float64, k)
	var emergencies, staleWrong, liveWrong, cycles [3]int
	for cycle = 0; cycle < n; cycle++ {
		for i, idx := range sensors {
			readings[i] = s.CandV.At(idx, cycle)
		}
		for j := 0; j < k; j++ {
			truth[j] = s.CritV.At(j, cycle)
		}
		if cycle >= driftStart {
			prog := math.Min(1, float64(cycle-driftStart)/float64(rampLen))
			for i := range readings {
				readings[i] -= 0.7 * droop * prog
			}
			for j := range truth {
				truth[j] -= droop * prog * (1 + 0.5*float64(j)/float64(k-1))
			}
		}

		phase := 0 // healthy
		switch {
		case cycle >= driftStart+rampLen:
			phase = 2 // fully aged
		case cycle >= driftStart:
			phase = 1 // droop ramping in
		}
		// Predict first, learn after the ground truth arrives — the order a
		// server sees.
		emg := below(truth)
		if emg {
			emergencies[phase]++
		}
		if below(pred.Predict(readings)) != emg {
			staleWrong[phase]++
		}
		if below(ad.Live().Predict(readings)) != emg {
			liveWrong[phase]++
		}
		cycles[phase]++

		res, err := ad.Ingest(readings, truth)
		if err != nil {
			log.Fatalf("cycle %d: %v", cycle, err)
		}
		if res.Promoted != nil && promotedAt < 0 {
			promotedAt = cycle
			fmt.Printf("            drift score at promotion: %.1f sigma over the training baseline\n", res.Drift)
		}
	}

	fmt.Println("\ntotal-error rate by phase (misclassified emergency cycles, frozen v1 vs adapted):")
	for i, name := range []string{"healthy", "droop ramping in", "fully aged"} {
		if cycles[i] == 0 {
			continue
		}
		c := float64(cycles[i])
		fmt.Printf("  %-18s %4d cycles (%3d emergencies)  frozen %5.1f%%   adapted %5.1f%%\n",
			name, cycles[i], emergencies[i], 100*float64(staleWrong[i])/c, 100*float64(liveWrong[i])/c)
	}
	st := ad.Status()
	fmt.Printf("\n%d promotion(s), live version %d, final drift score %.1f sigma\n",
		st.Promotions, st.Version, st.DriftScore)
}
