// Package voltsense reproduces "A Statistical Methodology for Noise Sensor
// Placement and Full-Chip Voltage Map Generation" (Liu, Sun, Zhou, Li, Qian
// — DAC 2015) as a self-contained Go library.
//
// The methodology places a small set of voltage-noise sensors in the blank
// area of a chip by solving a group-lasso feature-selection problem over
// simulated voltage maps, then refits an unbiased ordinary-least-squares
// model that predicts — at runtime, from only those sensors — the supply
// voltage of every function block (and, extended, the full-chip voltage
// map), enabling voltage-emergency detection with far fewer misses than
// threshold-only placements such as Eagle-Eye (ICCAD 2013).
//
// Two levels of API are exposed:
//
//   - The turn-key pipeline (NewPipeline with DefaultConfig/QuickConfig):
//     builds the 8-core chip model, synthesizes the 19 PARSEC-like
//     workloads, runs power-grid transient simulation, and regenerates every
//     table and figure of the paper (Table1, Table2, Figure1..Figure4
//     methods on Pipeline).
//
//   - The methodology on your own data (PlaceSensors, BuildPredictor,
//     SweepLambda): bring an M-by-N matrix of candidate-sensor voltage
//     samples and a K-by-N matrix of monitored-node voltage samples, get
//     back a sensor set and a runtime predictor.
//
// All numerics — dense/banded/sparse linear algebra, the FISTA and
// block-coordinate-descent group-lasso solvers, the backward-Euler power
// grid engine — are implemented in this module with no dependencies beyond
// the standard library.
package voltsense

import (
	"io"

	"voltsense/internal/core"
	"voltsense/internal/detect"
	"voltsense/internal/eagleeye"
	"voltsense/internal/experiments"
	"voltsense/internal/faults"
	"voltsense/internal/floorplan"
	"voltsense/internal/grid"
	"voltsense/internal/lasso"
	"voltsense/internal/mat"
	"voltsense/internal/monitor"
	"voltsense/internal/online"
	"voltsense/internal/pdn"
	"voltsense/internal/place"
	"voltsense/internal/power"
	"voltsense/internal/sensor"
	"voltsense/internal/thermal"
	"voltsense/internal/traceio"
	"voltsense/internal/transfer"
	"voltsense/internal/uarch"
	"voltsense/internal/vmap"
	"voltsense/internal/workload"
)

// Matrix is the dense row-major matrix type used throughout the API.
// Data matrices follow the paper's layout: rows are variables (sensor
// candidates or monitored nodes), columns are samples.
type Matrix = mat.Matrix

// NewMatrix wraps a row-major data slice as an r-by-c matrix (aliasing it).
func NewMatrix(r, c int, data []float64) *Matrix { return mat.New(r, c, data) }

// ZeroMatrix allocates an r-by-c zero matrix.
func ZeroMatrix(r, c int) *Matrix { return mat.Zeros(r, c) }

// MatrixFromRows copies a slice of equal-length rows into a matrix.
func MatrixFromRows(rows [][]float64) *Matrix { return mat.FromRows(rows) }

// --- The methodology on caller-supplied data (paper Sections 2.2-2.4) ---

// Dataset pairs candidate-sensor samples (X, M-by-N) with monitored-node
// samples (F, K-by-N).
type Dataset = core.Dataset

// PlacementConfig parameterizes sensor selection: the group-lasso budget λ,
// the selection threshold T (DefaultThreshold when zero) and solver options.
type PlacementConfig = core.Config

// Placement is a solved sensor selection: chosen candidate indices plus the
// per-candidate group norms behind the choice.
type Placement = core.Placement

// Predictor is the runtime model of the paper's Eq. 20.
type Predictor = core.Predictor

// SweepPoint is one λ of a placement/accuracy tradeoff sweep.
type SweepPoint = core.SweepPoint

// DefaultThreshold is the paper's T = 1e-3 group-norm selection cut.
const DefaultThreshold = core.DefaultThreshold

// SolverOptions tunes the group-lasso solvers.
type SolverOptions = lasso.Options

// PlaceSensors selects sensors from ds.X's candidates via group lasso
// (paper Eq. 12, Steps 0-5).
func PlaceSensors(ds *Dataset, cfg PlacementConfig) (*Placement, error) {
	return core.PlaceSensors(ds, cfg)
}

// BuildPredictor refits the unbiased OLS runtime model on the selected
// sensors (paper Eq. 17, Steps 6-8).
func BuildPredictor(ds *Dataset, selected []int) (*Predictor, error) {
	return core.BuildPredictor(ds, selected)
}

// SweepLambda runs the Section 2.4 workflow over a λ grid, scoring each
// point's prediction error on held-out data.
func SweepLambda(train, test *Dataset, lambdas []float64, cfg PlacementConfig) ([]SweepPoint, error) {
	return core.SweepLambda(train, test, lambdas, cfg)
}

// --- Emergency detection and the Eagle-Eye baseline (Section 3.2) ---

// DetectionRates aggregates the paper's miss-error, wrong-alarm-error and
// total-error rates.
type DetectionRates = detect.Rates

// DefaultVth is the paper's 0.85 V emergency threshold at VDD = 1.0 V.
const DefaultVth = detect.DefaultVth

// EmergencyTruth flags each sample (column) whose monitored voltages cross
// below vth.
func EmergencyTruth(voltages *Matrix, vth float64) []bool {
	return detect.TruthFromVoltages(voltages, vth)
}

// PredictionAlarms flags each sample whose predicted voltages cross below
// vth — the proposed scheme's alarm rule.
func PredictionAlarms(pred *Matrix, vth float64) []bool {
	return detect.AlarmsFromPredictions(pred, vth)
}

// ScoreDetection compares alarms against truth.
func ScoreDetection(truth, alarms []bool) DetectionRates { return detect.Score(truth, alarms) }

// EagleEyePlacement is a fitted baseline sensor set.
type EagleEyePlacement = eagleeye.Placement

// PlaceEagleEye runs the baseline's greedy emergency-coverage placement.
func PlaceEagleEye(x, f *Matrix, vth float64, q int) *EagleEyePlacement {
	return eagleeye.Place(x, f, vth, q)
}

// --- Pluggable placement criteria and heterogeneous sensor classes ---

// PlacementCriterion is one sensor-selection strategy: the paper's group
// lasso, the Eagle-Eye baseline, or any of the basis-driven optimality
// criteria (see DESIGN.md §13).
type PlacementCriterion = place.Criterion

// CriterionConfig parameterizes criterion-driven placement: candidate POD
// basis sizing, emergency threshold, and group-lasso solver options.
type CriterionConfig = core.CriterionConfig

// CriterionPlacement is a solved criterion-driven selection, carrying the
// shared placement problem for GLS refits or further criteria.
type CriterionPlacement = core.CriterionPlacement

// SensorClassSpec prices the two heterogeneous device classes (reference vs
// low-cost): per-class noise variance and deployment cost.
type SensorClassSpec = place.ClassSpec

// MixedSensorPlacement is a budget-constrained heterogeneous selection:
// sites, per-site device classes, and total cost.
type MixedSensorPlacement = place.MixedPlacement

// DefaultSensorClassSpec is the default mixed-network pricing: a reference
// sensor is 16× quieter and 4× the cost of a low-cost sensor.
var DefaultSensorClassSpec = place.DefaultClassSpec

// PlacementCriteria lists every registered criterion name.
func PlacementCriteria() []string { return place.Names() }

// ParsePlacementCriterion resolves a criterion by name (see
// PlacementCriteria), the same registry behind `sensorplace -criterion`.
func ParsePlacementCriterion(name string) (PlacementCriterion, error) {
	return place.ParseCriterion(name)
}

// PlaceWithCriterion selects q sensors with the named criterion — the
// pluggable counterpart of PlaceSensors.
func PlaceWithCriterion(ds *Dataset, name string, q int, cc CriterionConfig) (*CriterionPlacement, error) {
	crit, err := place.ParseCriterion(name)
	if err != nil {
		return nil, err
	}
	return core.PlaceWith(ds, crit, q, cc)
}

// PlaceMixedSensors spends a cost budget across reference and low-cost
// sensor classes; refit the result with BuildGLSPredictor and the
// placement's NoiseVariances.
func PlaceMixedSensors(ds *Dataset, spec SensorClassSpec, budget float64, cc CriterionConfig) (*MixedSensorPlacement, *place.Problem, error) {
	return core.PlaceMixedSensors(ds, spec, budget, cc)
}

// BuildGLSPredictor refits a selection with per-sensor noise weighting (GLS)
// into a standard runtime Predictor.
func BuildGLSPredictor(p *place.Problem, selected []int, noiseVar []float64) (*Predictor, error) {
	return core.BuildGLSPredictor(p, selected, noiseVar)
}

// --- Full-chip voltage map generation (the title's second half) ---

// MapGenerator reconstructs full-chip voltage maps from the placed sensors.
type MapGenerator = vmap.Generator

// TrainMapGenerator fits a map generator from selected-sensor samples
// (Q-by-N) to full-map samples (nodes-by-N).
func TrainMapGenerator(sensorX, nodeV *Matrix) (*MapGenerator, error) {
	return vmap.Train(sensorX, nodeV)
}

// RenderMap draws a voltage map as an ASCII heat field on the [lo, hi] volt
// scale.
func RenderMap(g *Grid, v []float64, lo, hi float64) string { return vmap.Render(g, v, lo, hi) }

// --- Substrate types for callers who build their own data ---

// Chip is a floorplan: cores, function blocks, FA/BA partition.
type Chip = floorplan.Chip

// FloorplanConfig parameterizes chip construction.
type FloorplanConfig = floorplan.Config

// NewChip builds a chip floorplan.
func NewChip(cfg FloorplanConfig) *Chip { return floorplan.New(cfg) }

// DefaultFloorplan returns the 8-core Xeon-E5-like chip of the experiments.
func DefaultFloorplan() FloorplanConfig { return floorplan.DefaultConfig() }

// Grid is a power-delivery mesh over a chip.
type Grid = grid.Grid

// GridConfig parameterizes the mesh.
type GridConfig = grid.Config

// BuildGrid constructs the mesh.
func BuildGrid(chip *Chip, cfg GridConfig) *Grid { return grid.Build(chip, cfg) }

// DefaultGrid returns the experiments' mesh parameters.
func DefaultGrid() GridConfig { return grid.DefaultConfig() }

// Simulator integrates the power grid through time.
type Simulator = pdn.Simulator

// NewSimulator assembles and factors the transient system at step dt.
func NewSimulator(g *Grid, dt float64) (*Simulator, error) { return pdn.NewSimulator(g, dt) }

// Benchmark is one synthetic workload.
type Benchmark = workload.Benchmark

// Benchmarks returns the 19 PARSEC-like workloads.
func Benchmarks() []Benchmark { return workload.Benchmarks() }

// PowerModel converts activity to block supply currents.
type PowerModel = power.Model

// DefaultPowerModel builds the 22 nm-class per-block power model.
func DefaultPowerModel(chip *Chip) *PowerModel { return power.DefaultModel(chip) }

// SavePredictor writes a fitted runtime model as versioned JSON for
// deployment; LoadPredictor reads it back.
func SavePredictor(w io.Writer, p *Predictor) error { return p.Save(w) }

// LoadPredictor reads a model written by SavePredictor.
func LoadPredictor(r io.Reader) (*Predictor, error) { return core.LoadPredictor(r) }

// --- Runtime monitoring (dynamic noise management) ---

// Monitor tracks per-block emergencies from streaming sensor readings with
// hysteresis and throttle hooks — the runtime loop around Eq. 20.
type Monitor = monitor.Monitor

// MonitorConfig tunes the alarm state machine.
type MonitorConfig = monitor.Config

// MonitorEvent is one emergency state transition.
type MonitorEvent = monitor.Event

// ThrottleFunc adapts a function to the monitor's throttle hook.
type ThrottleFunc = monitor.ThrottleFunc

// NewMonitor builds a runtime monitor over any predictor with k block
// outputs.
func NewMonitor(pred monitor.Predictor, k int, cfg MonitorConfig, th monitor.Throttler) (*Monitor, error) {
	return monitor.New(pred, k, cfg, th)
}

// --- Fault tolerance: surviving failed sensors at runtime ---

// FallbackSet is the fault-tolerance section of a predictor: per-sensor
// training statistics plus precomputed leave-k-out submodels.
type FallbackSet = core.FallbackSet

// FallbackModel is one leave-k-out submodel excluding specific sensors.
type FallbackModel = core.FallbackModel

// BuildPredictorWithFallbacks fits the Eq. 17 model plus leave-k-out
// fallback submodels tolerating up to budget failed sensors; the fallbacks
// serialize into the artifact's optional "fallbacks" section.
func BuildPredictorWithFallbacks(ds *Dataset, selected []int, budget int) (*Predictor, error) {
	return core.BuildPredictorWithFallbacks(ds, selected, budget)
}

// Fault is one synthetic sensor fault (stuck-at, dropout, or drift) for
// injection harnesses.
type Fault = faults.Fault

// FaultKind classifies a sensor fault.
type FaultKind = faults.Kind

// Fault kinds, for injection specs and detector diagnoses.
const (
	FaultNone    = faults.None
	FaultStuck   = faults.Stuck
	FaultDropout = faults.Dropout
	FaultDrift   = faults.Drift
)

// FaultDetector classifies sensors as healthy or faulty from streaming
// readings judged against their training distribution.
type FaultDetector = faults.Detector

// FaultDetectorConfig tunes detection windows and thresholds.
type FaultDetectorConfig = faults.DetectorConfig

// FaultGuard routes predictions through the active model — primary or
// fallback — switching atomically as the detector diagnoses sensors.
type FaultGuard = faults.Guard

// FaultRoute is one way to turn a reading vector into block voltages: the
// primary model, or a fallback that ignores its Excluded positions.
type FaultRoute = faults.Route

// FaultStatus reports the guard's state after each Process call.
type FaultStatus = faults.Status

// FaultInjector corrupts reading vectors per a fault spec.
type FaultInjector = faults.Injector

// SensorStats is one sensor's training-time reading distribution — the
// detector's reference.
type SensorStats = faults.SensorStats

// SensorTrainingStats summarizes each selected sensor's training readings
// (mean, std) — the detector's reference distribution.
func SensorTrainingStats(ds *Dataset, selected []int) []SensorStats {
	return core.SensorTrainingStats(ds, selected)
}

// ParseFaultSpec parses the JSON fault-spec format used by voltserved's
// -fault-spec flag.
func ParseFaultSpec(data []byte) ([]Fault, error) { return faults.ParseSpec(data) }

// NewFaultInjector validates a fault list against q sensors.
func NewFaultInjector(fl []Fault, q int) (*FaultInjector, error) { return faults.NewInjector(fl, q) }

// NewFaultDetector builds a detector over the sensors' training statistics.
func NewFaultDetector(stats []faults.SensorStats, cfg FaultDetectorConfig) (*FaultDetector, error) {
	return faults.NewDetector(stats, cfg)
}

// NewFaultGuard wires a detector, the primary route, and a fallback lookup
// into the runtime switch used by the serving layer.
func NewFaultGuard(det *FaultDetector, primary FaultRoute, lookup func([]int) (FaultRoute, bool)) (*FaultGuard, error) {
	return faults.NewGuard(det, primary, lookup)
}

// --- Online recalibration: tracking a drifting chip at runtime ---

// Lineage is the versioned provenance of a predictor: generation chain,
// fit source (offline training or an online promotion), and the residual
// baseline the drift detector judges against. Serialized as the artifact's
// optional "lineage" section.
type Lineage = core.Lineage

// Lineage sources.
const (
	LineageSourceTrain  = core.LineageSourceTrain
	LineageSourceOnline = core.LineageSourceOnline
)

// OnlineConfig tunes the adaptation loop: the shadow refit's forgetting
// factor, the promotion guardrails (minimum scored samples, TE margin),
// and the drift baseline.
type OnlineConfig = online.Config

// OnlineResult reports what one ingested labeled sample did to the loop —
// including whether it triggered a promotion.
type OnlineResult = online.Result

// OnlineStatus is a point-in-time snapshot of the adaptation loop: model
// version, drift score, live/shadow total error, promotion counts.
type OnlineStatus = online.Status

// OnlineApplyFunc, when non-nil, gates every promotion and rollback: it
// receives the candidate model and may veto the swap by returning an error
// (voltserved uses this to refuse stale or fault-compromised promotions).
type OnlineApplyFunc = online.ApplyFunc

// OnlineAdapter closes the recalibration loop around a live predictor:
// labeled samples feed a Sherman–Morrison shadow refit, both models are
// scored on the paper's total-error rate, and the shadow is promoted when
// it provably beats the live model.
type OnlineAdapter = online.Adapter

// NewOnlineAdapter builds the adaptation loop around the live predictor.
func NewOnlineAdapter(live *Predictor, cfg OnlineConfig, apply OnlineApplyFunc) (*OnlineAdapter, error) {
	return online.NewAdapter(live, cfg, apply)
}

// RecursiveOLS is the incremental least-squares fitter behind the shadow:
// rank-1 Sherman–Morrison updates with exponential forgetting, exactly
// matching a batch OLS refit after warmup.
type RecursiveOLS = online.RecursiveOLS

// NewRecursiveOLS creates an incremental fitter for q inputs and k outputs.
func NewRecursiveOLS(q, k int, forgetting float64) *RecursiveOLS {
	return online.NewRecursiveOLS(q, k, forgetting)
}

// --- Fleet transfer calibration: golden-chip prior + few-shot alignment ---

// SharedPrior is the fleet's distilled golden-chip knowledge: a Gaussian
// prior over the Eq. 20 coefficients, fit once from one or more fully
// characterized chips and shared by every fielded chip.
type SharedPrior = transfer.SharedPrior

// SharedPriorConfig tunes how golden predictors pool into a prior.
type SharedPriorConfig = transfer.PriorConfig

// AlignConfig tunes few-shot alignment: prior shrinkage, the minimum-sample
// evidence gate, and the delta sparsification tolerance.
type AlignConfig = transfer.AlignConfig

// ChipAlignment is one fielded chip's MAP refit against the shared prior:
// the aligned predictor, its sparse delta over the prior mean, and the
// normal-equation state for warm-starting online adaptation.
type ChipAlignment = transfer.Alignment

// PredictorDelta is the thin per-chip artifact a fleet store keeps instead
// of a full predictor: sparse coefficient deviations pinned to a prior
// fingerprint. Serialized as voltsense-delta/v1.
type PredictorDelta = transfer.Delta

// FitSharedPrior pools golden-chip predictors (same sensor selection) into
// the fleet's shared prior.
func FitSharedPrior(goldens []*Predictor, cfg SharedPriorConfig) (*SharedPrior, error) {
	return transfer.FitPrior(goldens, cfg)
}

// AlignChip refits one fielded chip against the shared prior from a few
// labeled samples (readings x, Q-by-N; voltages f, K-by-N) — the library
// counterpart of voltserved's POST /v1/calibrate.
func AlignChip(prior *SharedPrior, x, f *Matrix, cfg AlignConfig) (*ChipAlignment, error) {
	return transfer.AlignChip(prior, x, f, cfg)
}

// SaveSharedPrior writes a prior as versioned JSON (voltsense-prior/v1,
// the format voltserved's -prior flag loads); LoadSharedPrior reads it back.
func SaveSharedPrior(w io.Writer, p *SharedPrior) error { return p.Save(w) }

// LoadSharedPrior reads a prior written by SaveSharedPrior.
func LoadSharedPrior(r io.Reader) (*SharedPrior, error) { return transfer.LoadPrior(r) }

// --- Dataset persistence ---

// WriteDatasetCSV persists a dataset as two CSV streams (one row per
// sample), for interchange with external tools.
func WriteDatasetCSV(xw, fw io.Writer, ds *Dataset, xNames, fNames []string) error {
	return traceio.WriteDataset(xw, fw, &traceio.Dataset{X: ds.X, F: ds.F}, xNames, fNames)
}

// ReadDatasetCSV loads a dataset written by WriteDatasetCSV (or any
// header-plus-row-per-sample CSV pair with matching sample counts).
func ReadDatasetCSV(xr, fr io.Reader) (*Dataset, error) {
	d, err := traceio.ReadDataset(xr, fr)
	if err != nil {
		return nil, err
	}
	return &Dataset{X: d.X, F: d.F}, nil
}

// --- Physical extensions: sensors, heat, microarchitecture ---

// SensorModel describes a physical sensor's transfer characteristic:
// offset, gain, noise, ADC quantization.
type SensorModel = sensor.Model

// SensorArray applies per-instance sensor models (with fabrication spread)
// to reading vectors.
type SensorArray = sensor.Array

// IdealSensor returns a perfect sensor model.
func IdealSensor() SensorModel { return sensor.Ideal() }

// NewSensorArray instantiates n sensors from a base model plus fabrication
// variation, deterministically from seed.
func NewSensorArray(n int, base SensorModel, v sensor.Variation, seed int64) (*SensorArray, error) {
	return sensor.NewArray(n, base, v, seed)
}

// ThermalModel is the block-granularity temperature network with leakage
// feedback.
type ThermalModel = thermal.Model

// NewThermalModel assembles the thermal network for a chip.
func NewThermalModel(chip *Chip, cfg thermal.Config) (*ThermalModel, error) {
	return thermal.New(chip, cfg)
}

// DefaultThermal returns 22 nm-plausible packaging parameters.
func DefaultThermal() thermal.Config { return thermal.DefaultConfig() }

// GenerateUarchTrace synthesizes a workload trace from the
// microarchitectural performance model (instruction mix, issue limits,
// cache misses) instead of the default phase generator.
func GenerateUarchTrace(chip *Chip, bench Benchmark, steps, run int) *uarch.Trace {
	return uarch.Generate(chip, bench, steps, run)
}

// --- The turn-key experimental pipeline ---

// Pipeline is the end-to-end substrate that regenerates the paper's
// evaluation; see its Table1, Table2, Figure1-Figure4 methods.
type Pipeline = experiments.Pipeline

// PipelineConfig sizes the pipeline.
type PipelineConfig = experiments.Config

// DefaultConfig mirrors the paper's experimental scale (minutes to build).
func DefaultConfig() PipelineConfig { return experiments.DefaultConfig() }

// QuickConfig is the reduced pipeline for exploration (seconds to build).
func QuickConfig() PipelineConfig { return experiments.QuickConfig() }

// NewPipeline builds a pipeline: chip, workloads, transient simulations,
// training and held-out voltage maps.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) { return experiments.New(cfg) }
