module voltsense

go 1.22
